module Dq = Tyco_support.Dq
module Stats = Tyco_support.Stats
module Netref = Tyco_support.Netref
module Trace = Tyco_support.Trace
module Block = Tyco_compiler.Block
module Bytecode = Tyco_compiler.Bytecode
module Link = Tyco_compiler.Link
module Value = Tyco_vm.Value
module Machine = Tyco_vm.Machine
module Export_table = Tyco_net.Export_table
module Packet = Tyco_net.Packet

module Rtti = Tyco_types.Rtti

exception Protocol_error of string

let perr fmt = Format.kasprintf (fun m -> raise (Protocol_error m)) fmt

(* Type descriptors for the dynamic half of the combined checking
   scheme (paper §7): what this site's exports promise, and what its
   imports locally require. *)
type annotations = {
  a_export_rtti : (string * Rtti.t) list;
  a_import_expect : ((string * string) * Rtti.t) list;
}

let no_annotations = { a_export_rtti = []; a_import_expect = [] }

(* End-to-end recovery of the request/reply protocols (FETCH, name
   service): a request left unanswered past its deadline is re-sent
   with exponential backoff; after [r_max_tries] sends the request
   fails gracefully instead of hanging. *)
type retry = {
  r_timeout_ns : int;
  r_backoff : float;
  r_max_tries : int;
}

let default_retry = { r_timeout_ns = 4_000_000; r_backoff = 2.0; r_max_tries = 6 }

type fetch_req = {
  fr_ref : Netref.t;
  fr_span : Trace.span; (* request's causal span, reused by retries *)
  mutable fr_tries : int;
}

type import_req = {
  ir_cont : int;
  ir_captured : Value.t list;
  ir_key : string * string;
  ir_span : Trace.span;
  mutable ir_tries : int;
}

type t = {
  name : string;
  site_id : int;
  ip : int;
  send : Trace.span -> Packet.t -> unit;
  on_output : Output.event -> unit;
  annotations : annotations;
  tr : Trace.t;
  vm : Machine.t;
  entry : int;
  (* (packet, causal span, enqueue virtual time) — the span came over
     the wire (or the same-node fast path); the timestamp feeds the
     queue-wait half of the latency breakdown *)
  inbox : (Packet.t * Trace.span * int) Dq.t;
  (* export tables (paper: one per site, mapping local heap pointers to
     network references and back) *)
  chan_exports : Value.chan Export_table.t;
  (* (cls_group, cls_index) -> exported instances; a bucket holds one
     entry per distinct captured environment (compared physically) *)
  class_exports : (int * int, (Value.cls * int) list) Hashtbl.t;
  class_by_heap : (int, Value.cls) Hashtbl.t;
  mutable next_class_heap : int;
  (* FETCH protocol state *)
  fetch_cache : Value.cls Netref.Tbl.t;
  fetch_pending : Value.t array list Netref.Tbl.t;
  fetch_reqs : (int, fetch_req) Hashtbl.t;
  (* import (name service) state *)
  import_reqs : (int, import_req) Hashtbl.t;
  (* requests already answered or abandoned: late duplicate replies
     (a retransmission artifact) are dropped instead of raising *)
  done_reqs : (int, unit) Hashtbl.t;
  mutable next_req : int;
  (* request recovery; deadlines are armed only when the runtime
     provides a timer facility *)
  retry : retry;
  schedule : (delay:int -> (unit -> unit) -> unit) option;
  on_suspect : string -> unit;
  (* receiver-side linking caches: origin code key -> linked index *)
  obj_code_cache : (int * int * int, int) Hashtbl.t;
  grp_code_cache : (int * int * int, int) Hashtbl.t;
  mutable outputs : Output.event list; (* newest first *)
  mutable inputs : int list; (* pending io!readi data, in order *)
  mutable alive : bool;
  stats : Stats.t;
  c_pk_in : Stats.Counter.t;
  c_pk_out : Stats.Counter.t;
  c_fetches : Stats.Counter.t;
  c_ships_in : Stats.Counter.t;
  c_links : Stats.Counter.t;
  c_retries : Stats.Counter.t;
  c_timeouts : Stats.Counter.t;
  d_queue_wait : Stats.Dist.t;
  d_execute : Stats.Dist.t;
}

let name t = t.name
let site_id t = t.site_id
let ip t = t.ip
let vm t = t.vm
let alive t = t.alive
let outputs t = List.rev t.outputs
let stats t = t.stats

let create ?(annotations = no_annotations) ?(inputs = [])
    ?(retry = default_retry) ?schedule ?(on_suspect = fun _ -> ())
    ?(trace = Trace.disabled) ~name ~site_id ~ip ~send ~on_output ~unit_ () =
  let area, entry = Link.of_unit unit_ in
  let vm = Machine.create ~name ~trace ~track:site_id area in
  Trace.register_track trace ~id:site_id ~name;
  let stats = Machine.stats vm in
  { name;
    site_id;
    ip;
    send;
    on_output;
    annotations;
    tr = trace;
    vm;
    entry;
    inbox = Dq.create ();
    chan_exports = Export_table.create ();
    class_exports = Hashtbl.create 8;
    class_by_heap = Hashtbl.create 8;
    next_class_heap = 0;
    fetch_cache = Netref.Tbl.create 8;
    fetch_pending = Netref.Tbl.create 8;
    fetch_reqs = Hashtbl.create 8;
    import_reqs = Hashtbl.create 8;
    done_reqs = Hashtbl.create 8;
    next_req = 0;
    retry;
    schedule;
    on_suspect;
    obj_code_cache = Hashtbl.create 8;
    grp_code_cache = Hashtbl.create 8;
    outputs = [];
    inputs;
    alive = true;
    stats;
    c_pk_in = Stats.counter stats "packets_in";
    c_pk_out = Stats.counter stats "packets_out";
    c_fetches = Stats.counter stats "fetches";
    c_ships_in = Stats.counter stats "ships_in";
    c_links = Stats.counter stats "links";
    c_retries = Stats.counter stats "retries";
    c_timeouts = Stats.counter stats "timeouts";
    d_queue_wait = Stats.dist stats "queue_wait_ns";
    d_execute = Stats.dist stats "execute_ns" }

let fresh_req t =
  let r = t.next_req in
  t.next_req <- r + 1;
  r

(* Hand a packet to the daemon under causal span [ctx] (null when
   tracing is off).  The [Send] event is emitted here — on the sending
   site's track, at the site's current virtual clock — so the flow
   arrow to the matching [Deliver] starts where the cause lives. *)
let send t ~ctx p =
  Stats.Counter.incr t.c_pk_out;
  if Trace.enabled t.tr then
    Trace.emit t.tr ~ts:(Machine.clock t.vm) ~track:t.site_id ~span:ctx
      (Trace.Send { pk = Packet.trace_pk p; bytes = Packet.byte_size p });
  t.send ctx p

(* The span a freshly-made packet travels under: a child of the thread
   (or delivery) that caused it. *)
let packet_span t ~parent =
  if Trace.enabled t.tr then Trace.fresh_span t.tr ~parent
  else Trace.null_span

(* ------------------------------------------------------------------ *)
(* The two-step reference translation.                                 *)

let export_chan t (c : Value.chan) : Netref.t =
  let heap_id = Export_table.export t.chan_exports ~uid:c.Value.ch_uid c in
  Netref.make ~kind:Netref.Channel ~heap_id ~site_id:t.site_id ~ip:t.ip

let export_class t (c : Value.cls) : Netref.t =
  let key = (c.Value.cls_group, c.Value.cls_index) in
  let bucket =
    Option.value ~default:[] (Hashtbl.find_opt t.class_exports key)
  in
  let heap_id =
    match
      List.find_opt
        (fun ((c', _) : Value.cls * int) -> c'.Value.cls_env == c.Value.cls_env)
        bucket
    with
    | Some (_, heap_id) -> heap_id
    | None ->
        let heap_id = t.next_class_heap in
        t.next_class_heap <- heap_id + 1;
        Hashtbl.replace t.class_exports key ((c, heap_id) :: bucket);
        Hashtbl.add t.class_by_heap heap_id c;
        heap_id
  in
  Netref.make ~kind:Netref.Class ~heap_id ~site_id:t.site_id ~ip:t.ip

(* Outgoing: local heap values become network references (step one of
   the translation, performed by the sender). *)
let to_wire t (v : Value.t) : Packet.wvalue =
  match v with
  | Value.Vint n -> Packet.Wint n
  | Value.Vbool b -> Packet.Wbool b
  | Value.Vstr s -> Packet.Wstr s
  | Value.Vchan c -> Packet.Wref (export_chan t c)
  | Value.Vnetref r -> Packet.Wref r
  | Value.Vclass c -> Packet.Wref (export_class t c)
  | Value.Vclassref r -> Packet.Wref r

(* Incoming: references bound to this site are resolved to heap
   pointers (step two, performed by the receiver). *)
let of_wire t (w : Packet.wvalue) : Value.t =
  match w with
  | Packet.Wint n -> Value.Vint n
  | Packet.Wbool b -> Value.Vbool b
  | Packet.Wstr s -> Value.Vstr s
  | Packet.Wref r when r.Netref.site_id = t.site_id && r.Netref.ip = t.ip -> (
      match r.Netref.kind with
      | Netref.Channel -> (
          match Export_table.resolve t.chan_exports r.Netref.heap_id with
          | Some c -> Value.Vchan c
          | None -> perr "unknown local channel heap id %d" r.Netref.heap_id)
      | Netref.Class -> (
          match Hashtbl.find_opt t.class_by_heap r.Netref.heap_id with
          | Some c -> Value.Vclass c
          | None -> perr "unknown local class heap id %d" r.Netref.heap_id))
  | Packet.Wref r -> (
      match r.Netref.kind with
      | Netref.Channel -> Value.Vnetref r
      | Netref.Class -> Value.Vclassref r)

let rtti_of_export t x =
  match List.assoc_opt x t.annotations.a_export_rtti with
  | Some d ->
      let enc = Tyco_support.Wire.encoder () in
      Rtti.encode enc d;
      Tyco_support.Wire.to_string enc
  | None -> ""

(* ------------------------------------------------------------------ *)
(* Request deadlines (FETCH and name-service lookups).                 *)

let emit_failure t label detail =
  let event =
    { Output.site = t.name; label; args = [ Output.Ostr detail ] }
  in
  t.outputs <- event :: t.outputs;
  t.on_output event

(* Deadline of the [tries]-th send: exponential backoff with a
   deterministic per-request jitter that desynchronizes retry bursts
   without consuming simulation randomness. *)
let rto t ~req_id ~tries =
  let r = t.retry in
  let base =
    int_of_float
      (float_of_int r.r_timeout_ns *. (r.r_backoff ** float_of_int (tries - 1)))
  in
  base + ((req_id * 7919 + tries * 104729) mod ((r.r_timeout_ns / 4) + 1))

let send_fetch_req t req_id ~ctx (r : Netref.t) =
  send t ~ctx
    (Packet.Pfetch_req
       { cls = r; req_id; requester_site = t.site_id; requester_ip = t.ip })

let rec arm_fetch_deadline t req_id =
  match t.schedule with
  | None -> ()
  | Some sched -> (
      match Hashtbl.find_opt t.fetch_reqs req_id with
      | None -> ()
      | Some fr ->
          sched ~delay:(rto t ~req_id ~tries:fr.fr_tries) (fun () ->
              fetch_deadline t req_id))

and fetch_deadline t req_id =
  if t.alive then
    match Hashtbl.find_opt t.fetch_reqs req_id with
    | None -> () (* answered in the meantime *)
    | Some fr ->
        if fr.fr_tries >= t.retry.r_max_tries then begin
          Hashtbl.remove t.fetch_reqs req_id;
          Hashtbl.replace t.done_reqs req_id ();
          Netref.Tbl.remove t.fetch_pending fr.fr_ref;
          Stats.Counter.incr t.c_timeouts;
          emit_failure t "fetch-failed" (Format.asprintf "%a" Netref.pp fr.fr_ref);
          t.on_suspect (Printf.sprintf "site#%d" fr.fr_ref.Netref.site_id)
        end
        else begin
          fr.fr_tries <- fr.fr_tries + 1;
          Stats.Counter.incr t.c_retries;
          send_fetch_req t req_id ~ctx:fr.fr_span fr.fr_ref;
          arm_fetch_deadline t req_id
        end

let send_import_req t req_id ~ctx ~site ~name ~is_class =
  send t ~ctx
    (Packet.Pns_lookup
       { site_name = site; id_name = name; want_class = is_class; req_id;
         requester_site = t.site_id; requester_ip = t.ip })

let rec arm_import_deadline t req_id ~is_class =
  match t.schedule with
  | None -> ()
  | Some sched -> (
      match Hashtbl.find_opt t.import_reqs req_id with
      | None -> ()
      | Some ir ->
          sched ~delay:(rto t ~req_id ~tries:ir.ir_tries) (fun () ->
              import_deadline t req_id ~is_class))

and import_deadline t req_id ~is_class =
  if t.alive then
    match Hashtbl.find_opt t.import_reqs req_id with
    | None -> ()
    | Some ir ->
        let site, name = ir.ir_key in
        if ir.ir_tries >= t.retry.r_max_tries then begin
          Hashtbl.remove t.import_reqs req_id;
          Hashtbl.replace t.done_reqs req_id ();
          Stats.Counter.incr t.c_timeouts;
          emit_failure t "import-failed" (Printf.sprintf "%s.%s" site name);
          t.on_suspect site
        end
        else begin
          ir.ir_tries <- ir.ir_tries + 1;
          Stats.Counter.incr t.c_retries;
          send_import_req t req_id ~ctx:ir.ir_span ~site ~name ~is_class;
          arm_import_deadline t req_id ~is_class
        end

(* ------------------------------------------------------------------ *)
(* Outgoing remote operations (drained after each VM quantum).         *)

(* [sp] is the span of the thread that requested the instantiation. *)
let start_fetch t ~sp (r : Netref.t) (args : Value.t array) =
  match Netref.Tbl.find_opt t.fetch_cache r with
  | Some cls ->
      Machine.set_current_span t.vm sp;
      Machine.instantiate_args t.vm cls args
  | None ->
      let pending =
        Option.value ~default:[] (Netref.Tbl.find_opt t.fetch_pending r)
      in
      Netref.Tbl.replace t.fetch_pending r (args :: pending);
      if pending = [] then begin
        Stats.Counter.incr t.c_fetches;
        let req_id = fresh_req t in
        let ctx = packet_span t ~parent:sp in
        Hashtbl.replace t.fetch_reqs req_id
          { fr_ref = r; fr_span = ctx; fr_tries = 1 };
        send_fetch_req t req_id ~ctx r;
        arm_fetch_deadline t req_id
      end

(* [sp] is the span of the VM thread that pushed the op: every packet
   it causes travels as that span's child. *)
let handle_remote_op t (op : Machine.remote_op) (sp : Trace.span) =
  match op with
  | Machine.Rmsg (dst, label, args) ->
      send t ~ctx:(packet_span t ~parent:sp)
        (Packet.Pmsg
           { dst; label; args = List.map (to_wire t) (Array.to_list args) })
  | Machine.Robj (dst, obj) ->
      let unit_ = Link.snapshot (Machine.area t.vm) in
      let code_unit, mtable = Bytecode.extract_mtable unit_ obj.Value.obj_mtable in
      send t ~ctx:(packet_span t ~parent:sp)
        (Packet.Pobj
           { dst;
             code = Bytecode.unit_to_string code_unit;
             code_key = (t.ip, t.site_id, obj.Value.obj_mtable);
             mtable;
             env = List.map (to_wire t) (Array.to_list obj.Value.obj_env) })
  | Machine.Rfetch (r, args) -> start_fetch t ~sp r args
  | Machine.Rexport_name (x, chan) ->
      let nref = export_chan t chan in
      send t ~ctx:(packet_span t ~parent:sp)
        (Packet.Pns_register
           { site_name = t.name; id_name = x; nref;
             rtti = rtti_of_export t x })
  | Machine.Rexport_class (x, cls) ->
      let nref = export_class t cls in
      send t ~ctx:(packet_span t ~parent:sp)
        (Packet.Pns_register
           { site_name = t.name; id_name = x; nref;
             rtti = rtti_of_export t x })
  | Machine.Rimport { site; name; is_class; cont; captured } ->
      let req_id = fresh_req t in
      let ctx = packet_span t ~parent:sp in
      Hashtbl.replace t.import_reqs req_id
        { ir_cont = cont; ir_captured = captured; ir_key = (site, name);
          ir_span = ctx; ir_tries = 1 };
      send_import_req t req_id ~ctx ~site ~name ~is_class;
      arm_import_deadline t req_id ~is_class

(* ------------------------------------------------------------------ *)
(* Incoming packets.                                                   *)

let resolve_local_chan t (r : Netref.t) : Value.chan =
  if r.Netref.site_id <> t.site_id || r.Netref.ip <> t.ip then
    perr "packet for site %d delivered to site %d" r.Netref.site_id t.site_id;
  match Export_table.resolve t.chan_exports r.Netref.heap_id with
  | Some c -> c
  | None -> perr "unknown channel heap id %d" r.Netref.heap_id

let link_once t ~ctx cache key code root_of =
  match Hashtbl.find_opt cache key with
  | Some linked -> linked
  | None ->
      let sub =
        try Bytecode.unit_of_string code
        with Tyco_support.Wire.Malformed m -> perr "malformed byte-code: %s" m
      in
      Stats.Counter.incr t.c_links;
      if Trace.enabled t.tr then
        Trace.emit t.tr ~ts:(Machine.clock t.vm) ~track:t.site_id ~span:ctx
          (Trace.Link_code { bytes = String.length code });
      let offsets = Link.link (Machine.area t.vm) sub in
      let linked = root_of offsets in
      Hashtbl.replace cache key linked;
      linked

(* [ctx] is the packet's span: everything its processing causes — the
   threads injections spawn, the reply a FETCH request triggers — is
   recorded as its descendant. *)
let handle_packet t ~ctx (p : Packet.t) =
  Stats.Counter.incr t.c_pk_in;
  Machine.set_current_span t.vm ctx;
  match p with
  | Packet.Pmsg { dst; label; args } ->
      Stats.Counter.incr t.c_ships_in;
      let chan = resolve_local_chan t dst in
      Machine.inject_msg t.vm chan label (List.map (of_wire t) args)
  | Packet.Pobj { dst; code; code_key; mtable; env } ->
      Stats.Counter.incr t.c_ships_in;
      let chan = resolve_local_chan t dst in
      let area_mt =
        link_once t ~ctx t.obj_code_cache code_key code
          (fun (o : Link.offsets) -> mtable + o.Link.mt_off)
      in
      let obj =
        { Value.obj_mtable = area_mt;
          obj_env = Array.of_list (List.map (of_wire t) env) }
      in
      if Trace.enabled t.tr then
        Trace.emit t.tr ~ts:(Machine.clock t.vm) ~track:t.site_id ~span:ctx
          Trace.Obj_commit;
      Machine.inject_obj t.vm chan obj
  | Packet.Pfetch_req { cls; req_id; requester_site; requester_ip } ->
      if cls.Netref.kind <> Netref.Class then perr "fetch of a channel reference";
      let c =
        match Hashtbl.find_opt t.class_by_heap cls.Netref.heap_id with
        | Some c -> c
        | None -> perr "unknown class heap id %d" cls.Netref.heap_id
      in
      let unit_ = Link.snapshot (Machine.area t.vm) in
      let code_unit, group = Bytecode.extract_group unit_ c.Value.cls_group in
      let g = Link.group (Machine.area t.vm) c.Value.cls_group in
      let ncap = Array.length g.Block.grp_captures in
      let env_captures =
        List.init ncap (fun i -> to_wire t c.Value.cls_env.(i))
      in
      send t ~ctx:(packet_span t ~parent:ctx)
        (Packet.Pfetch_rep
           { req_id;
             dst_site = requester_site;
             dst_ip = requester_ip;
             code = Bytecode.unit_to_string code_unit;
             code_key = (t.ip, t.site_id, c.Value.cls_group);
             group;
             index = c.Value.cls_index;
             env_captures })
  | Packet.Pfetch_rep { req_id; _ } when Hashtbl.mem t.done_reqs req_id ->
      (* a late duplicate of an already-answered (or abandoned) FETCH:
         retransmission makes these normal, not a protocol violation *)
      ()
  | Packet.Pfetch_rep { req_id; code; code_key; group; index; env_captures; _ } ->
      let nref =
        match Hashtbl.find_opt t.fetch_reqs req_id with
        | Some fr -> fr.fr_ref
        | None -> perr "fetch reply for unknown request %d" req_id
      in
      Hashtbl.remove t.fetch_reqs req_id;
      Hashtbl.replace t.done_reqs req_id ();
      let area_grp =
        link_once t ~ctx t.grp_code_cache code_key code
          (fun (o : Link.offsets) -> group + o.Link.grp_off)
      in
      let g = Link.group (Machine.area t.vm) area_grp in
      let ncap = Array.length g.Block.grp_captures in
      let k = Array.length g.Block.grp_classes in
      if List.length env_captures <> ncap then
        perr "fetch reply capture arity mismatch";
      let shared = Array.make (ncap + k) (Value.Vint 0) in
      List.iteri (fun i w -> shared.(i) <- of_wire t w) env_captures;
      for i = 0 to k - 1 do
        shared.(ncap + i) <-
          Value.Vclass { Value.cls_group = area_grp; cls_index = i; cls_env = shared }
      done;
      if index < 0 || index >= k then perr "fetch reply class index out of range";
      let cls =
        match shared.(ncap + index) with
        | Value.Vclass c -> c
        | _ -> assert false
      in
      Netref.Tbl.replace t.fetch_cache nref cls;
      let pending =
        Option.value ~default:[] (Netref.Tbl.find_opt t.fetch_pending nref)
      in
      Netref.Tbl.remove t.fetch_pending nref;
      List.iter
        (fun args -> Machine.instantiate_args t.vm cls args)
        (List.rev pending)
  | Packet.Pns_reply { req_id; result; rtti; _ } -> (
      match Hashtbl.find_opt t.import_reqs req_id with
      | None ->
          if not (Hashtbl.mem t.done_reqs req_id) then
            perr "name service reply for unknown request %d" req_id
      | Some { ir_cont = cont; ir_captured = captured; ir_key = key; _ } -> (
          Hashtbl.remove t.import_reqs req_id;
          Hashtbl.replace t.done_reqs req_id ();
          match result with
          | None -> perr "name service reported unresolvable import"
          | Some r ->
              (* dynamic type check: the exporter's descriptor against
                 every local expectation for this identifier *)
              (if not (String.equal rtti "") then
                 let remote =
                   try Rtti.decode (Tyco_support.Wire.decoder rtti)
                   with Tyco_support.Wire.Malformed m ->
                     perr "malformed type descriptor: %s" m
                 in
                 List.iter
                   (fun (k, expect) ->
                     if k = key && not (Rtti.compatible expect remote) then
                       perr
                         "type mismatch on import %s.%s: expected %s, \
                          exporter provides %s"
                         (fst key) (snd key)
                         (Format.asprintf "%a" Rtti.pp expect)
                         (Format.asprintf "%a" Rtti.pp remote))
                   t.annotations.a_import_expect);
              let v = of_wire t (Packet.Wref r) in
              Machine.spawn t.vm ~block:cont ~env:(v :: captured)))
  | Packet.Pns_register _ | Packet.Pns_lookup _ ->
      perr "name-service packet delivered to an ordinary site"

(* ------------------------------------------------------------------ *)
(* Lifecycle.                                                          *)

let io_handler t label args =
  if String.equal label "readi" then
    (* input: reply on the argument channel with the next supplied
       integer; a starved read blocks silently (paper §5: the I/O port
       both receives data from and provides data to programs) *)
    match (args, t.inputs) with
    | [ Value.Vchan k ], v :: rest ->
        t.inputs <- rest;
        Machine.inject_msg t.vm k "val" [ Value.Vint v ]
    | [ Value.Vchan _ ], [] -> ()
    | _ -> perr "io!readi expects one local reply channel"
  else begin
    let event =
      { Output.site = t.name; label; args = List.map Output.of_vm_value args }
    in
    t.outputs <- event :: t.outputs;
    t.on_output event
  end

let start t =
  let io = Machine.builtin_chan t.vm "io" (io_handler t) in
  Machine.spawn_entry t.vm ~entry:t.entry ~io

let deliver ?(ctx = Trace.null_span) ?(now = 0) t p =
  if t.alive then Dq.push_back t.inbox (p, ctx, now)

let busy t =
  t.alive && (Machine.runnable t.vm || not (Dq.is_empty t.inbox))

let outstanding t =
  if t.alive then Hashtbl.length t.fetch_reqs + Hashtbl.length t.import_reqs
  else 0

(* Costs (virtual ns) of the non-VM work a site does in a quantum. *)
let packet_handling_cost = 800
let remote_op_cost = 600

let pump ?(now = 0) t ~quantum =
  if not t.alive then 0
  else begin
    let cost = ref 0 in
    let rec drain_inbox () =
      match Dq.pop_front t.inbox with
      | None -> ()
      | Some (p, ctx, enq) ->
          Machine.set_clock t.vm (now + !cost);
          Stats.Dist.add t.d_queue_wait (float_of_int (now + !cost - enq));
          cost := !cost + packet_handling_cost;
          handle_packet t ~ctx p;
          drain_inbox ()
    in
    drain_inbox ();
    Machine.set_clock t.vm (now + !cost);
    let _instrs, vm_cost = Machine.run t.vm ~budget:quantum in
    Stats.Dist.add t.d_execute (float_of_int vm_cost);
    cost := !cost + vm_cost;
    let rec drain_ops () =
      match Machine.pop_remote_traced t.vm with
      | None -> ()
      | Some (op, sp) ->
          cost := !cost + remote_op_cost;
          handle_remote_op t op sp;
          drain_ops ()
    in
    drain_ops ();
    !cost
  end

let kill t =
  t.alive <- false;
  Dq.clear t.inbox

module Dq = Tyco_support.Dq
module Stats = Tyco_support.Stats
module Netref = Tyco_support.Netref
module Trace = Tyco_support.Trace
module Lru = Tyco_support.Lru
module Block = Tyco_compiler.Block
module Bytecode = Tyco_compiler.Bytecode
module Link = Tyco_compiler.Link
module Value = Tyco_vm.Value
module Machine = Tyco_vm.Machine
module Export_table = Tyco_net.Export_table
module Packet = Tyco_net.Packet

module Rtti = Tyco_types.Rtti

exception Protocol_error of string

let perr fmt = Format.kasprintf (fun m -> raise (Protocol_error m)) fmt

(* A packet named an identifier this site once issued and has since
   reclaimed.  Unlike [Protocol_error] (a violation typed programs
   never trigger), stale references are an expected consequence of
   lease reclamation racing in-flight traffic: the packet is dropped
   and the failure surfaced as a ["stale-ref"] output event. *)
exception Stale of string

let stale fmt = Format.kasprintf (fun m -> raise (Stale m)) fmt

(* Type descriptors for the dynamic half of the combined checking
   scheme (paper §7): what this site's exports promise, and what its
   imports locally require. *)
type annotations = {
  a_export_rtti : (string * Rtti.t) list;
  a_import_expect : ((string * string) * Rtti.t) list;
}

let no_annotations = { a_export_rtti = []; a_import_expect = [] }

(* End-to-end recovery of the request/reply protocols (FETCH, name
   service): a request left unanswered past its deadline is re-sent
   with exponential backoff; after [r_max_tries] sends the request
   fails gracefully instead of hanging. *)
type retry = {
  r_timeout_ns : int;
  r_backoff : float;
  r_max_tries : int;
}

let default_retry = { r_timeout_ns = 4_000_000; r_backoff = 2.0; r_max_tries = 6 }

(* Resource lifecycle: bounds on the state a site keeps on behalf of
   its peers.  All zeros (the default) reproduces the seed behaviour —
   exports and request records live forever. *)
type lifecycle = {
  lc_lease_ns : int;
  lc_refresh_ns : int;
  lc_hold_ns : int;
  lc_code_cache : int;
  lc_done_horizon_ns : int;
}

let default_lifecycle =
  { lc_lease_ns = 0; lc_refresh_ns = 0; lc_hold_ns = 0; lc_code_cache = 256;
    lc_done_horizon_ns = 0 }

type fetch_req = {
  fr_ref : Netref.t;
  fr_span : Trace.span; (* request's causal span, reused by retries *)
  mutable fr_tries : int;
}

type import_req = {
  ir_cont : int;
  ir_captured : Value.t list;
  ir_key : string * string;
  ir_span : Trace.span;
  mutable ir_tries : int;
}

(* Foreign references this site currently holds, grouped by their
   exporter; values are the last virtual time the reference was used.
   The lifecycle tick refreshes recently-used entries with the exporter
   and forgets the rest. *)
type held = {
  hd_chans : (int, int) Hashtbl.t;   (* heap id -> last touch *)
  hd_classes : (int, int) Hashtbl.t;
}

type t = {
  name : string;
  site_id : int;
  ip : int;
  send : Trace.span -> Packet.t -> unit;
  on_output : Output.event -> unit;
  annotations : annotations;
  tr : Trace.t;
  tr_on : bool; (* cached [Trace.enabled tr]; fixed at creation *)
  vm : Machine.t;
  entry : int;
  (* (packet, causal span, enqueue virtual time) — the span came over
     the wire (or the same-node fast path); the timestamp feeds the
     queue-wait half of the latency breakdown *)
  inbox : (Packet.t * Trace.span * int) Dq.t;
  (* export tables (paper: one per site, mapping local heap pointers to
     network references and back) *)
  chan_exports : Value.chan Export_table.t;
  (* (cls_group, cls_index) -> exported instances; a bucket holds one
     entry per distinct captured environment (compared physically) *)
  class_exports : (int * int, (Value.cls * int) list) Hashtbl.t;
  class_by_heap : (int, Value.cls) Hashtbl.t;
  class_keys : (int, int * int) Hashtbl.t; (* heap id -> bucket key *)
  mutable next_class_heap : int;
  (* lease state: expiry per exported heap id; pinned ids (registered
     with the name service, which remembers them forever) never expire *)
  lifecycle : lifecycle;
  (* cached [lc_lease_ns > 0] (the lifecycle is fixed at creation):
     every resolve/send-path lease hook branches on this one load and
     falls straight through when leases are disabled *)
  leases : bool;
  chan_leases : (int, int) Hashtbl.t;
  class_leases : (int, int) Hashtbl.t;
  pinned_chans : (int, unit) Hashtbl.t;
  pinned_classes : (int, unit) Hashtbl.t;
  held : (int * int, held) Hashtbl.t; (* (site, ip) -> refs we hold *)
  mutable next_lifecycle : int; (* virtual time of the next tick *)
  (* FETCH protocol state *)
  fetch_cache : Value.cls Netref.Tbl.t;
  fetch_pending : Value.t array list Netref.Tbl.t;
  fetch_reqs : (int, fetch_req) Hashtbl.t;
  (* import (name service) state *)
  import_reqs : (int, import_req) Hashtbl.t;
  (* requests already answered or abandoned: late duplicate replies
     (a retransmission artifact) are dropped instead of raising.
     [done_order] remembers completion times so entries older than the
     sender's retry horizon can be pruned. *)
  done_reqs : (int, unit) Hashtbl.t;
  done_order : (int * int) Dq.t; (* (req id, completion time), oldest first *)
  mutable next_req : int;
  (* request recovery; deadlines are armed only when the runtime
     provides a timer facility *)
  retry : retry;
  schedule : (delay:int -> (unit -> unit) -> unit) option;
  on_suspect : string -> unit;
  (* receiver-side linking caches: origin code key -> linked index;
     capacity-bounded, a miss re-fetches (the origin still has the
     code — only the mapping is evicted, not the linked program area) *)
  obj_code_cache : (int * int * int, int) Lru.t;
  grp_code_cache : (int * int * int, int) Lru.t;
  mutable outputs : Output.event list; (* newest first *)
  mutable inputs : int list; (* pending io!readi data, in order *)
  mutable alive : bool;
  stats : Stats.t;
  c_pk_in : Stats.Counter.t;
  c_pk_out : Stats.Counter.t;
  c_fetches : Stats.Counter.t;
  c_ships_in : Stats.Counter.t;
  c_links : Stats.Counter.t;
  c_retries : Stats.Counter.t;
  c_timeouts : Stats.Counter.t;
  c_stale_refs : Stats.Counter.t;
  c_leases_expired : Stats.Counter.t;
  c_ids_reclaimed : Stats.Counter.t;
  c_lease_refreshes : Stats.Counter.t;
  c_cache_evictions : Stats.Counter.t;
  c_done_pruned : Stats.Counter.t;
  c_held_dropped : Stats.Counter.t;
  d_queue_wait : Stats.Dist.t;
  d_execute : Stats.Dist.t;
}

let name t = t.name
let site_id t = t.site_id
let ip t = t.ip
let vm t = t.vm
let alive t = t.alive
let outputs t = List.rev t.outputs
let stats t = t.stats

let create ?(annotations = no_annotations) ?(inputs = [])
    ?(retry = default_retry) ?(lifecycle = default_lifecycle) ?schedule
    ?(on_suspect = fun _ -> ()) ?(trace = Trace.disabled) ~name ~site_id ~ip
    ~send ~on_output ~unit_ () =
  let area, entry = Link.of_unit unit_ in
  let vm = Machine.create ~name ~trace ~track:site_id area in
  Trace.register_track trace ~id:site_id ~name ();
  let stats = Machine.stats vm in
  let cache_cap = max 1 lifecycle.lc_code_cache in
  { name;
    site_id;
    ip;
    send;
    on_output;
    annotations;
    tr = trace;
    tr_on = Trace.enabled trace;
    vm;
    entry;
    inbox = Dq.create ();
    chan_exports = Export_table.create ();
    class_exports = Hashtbl.create 8;
    class_by_heap = Hashtbl.create 8;
    class_keys = Hashtbl.create 8;
    next_class_heap = 0;
    lifecycle;
    leases = lifecycle.lc_lease_ns > 0;
    chan_leases = Hashtbl.create 8;
    class_leases = Hashtbl.create 8;
    pinned_chans = Hashtbl.create 4;
    pinned_classes = Hashtbl.create 4;
    held = Hashtbl.create 4;
    next_lifecycle = 0;
    fetch_cache = Netref.Tbl.create 8;
    fetch_pending = Netref.Tbl.create 8;
    fetch_reqs = Hashtbl.create 8;
    import_reqs = Hashtbl.create 8;
    done_reqs = Hashtbl.create 8;
    done_order = Dq.create ();
    next_req = 0;
    retry;
    schedule;
    on_suspect;
    obj_code_cache = Lru.create ~capacity:cache_cap;
    grp_code_cache = Lru.create ~capacity:cache_cap;
    outputs = [];
    inputs;
    alive = true;
    stats;
    c_pk_in = Stats.counter stats "packets_in";
    c_pk_out = Stats.counter stats "packets_out";
    c_fetches = Stats.counter stats "fetches";
    c_ships_in = Stats.counter stats "ships_in";
    c_links = Stats.counter stats "links";
    c_retries = Stats.counter stats "retries";
    c_timeouts = Stats.counter stats "timeouts";
    c_stale_refs = Stats.counter stats "stale_refs";
    c_leases_expired = Stats.counter stats "leases_expired";
    c_ids_reclaimed = Stats.counter stats "ids_reclaimed";
    c_lease_refreshes = Stats.counter stats "lease_refreshes";
    c_cache_evictions = Stats.counter stats "code_cache_evictions";
    c_done_pruned = Stats.counter stats "done_reqs_pruned";
    c_held_dropped = Stats.counter stats "held_imports_dropped";
    d_queue_wait = Stats.dist stats "queue_wait_ns";
    d_execute = Stats.dist stats "execute_ns" }

let fresh_req t =
  let r = t.next_req in
  t.next_req <- r + 1;
  r

(* Hand a packet to the daemon under causal span [ctx] (null when
   tracing is off).  The [Send] event is emitted here — on the sending
   site's track, at the site's current virtual clock — so the flow
   arrow to the matching [Deliver] starts where the cause lives. *)
let send t ~ctx p =
  Stats.Counter.incr t.c_pk_out;
  if t.tr_on then
    Trace.emit t.tr ~ts:(Machine.clock t.vm) ~track:t.site_id ~span:ctx
      (Trace.Send { pk = Packet.trace_pk p; bytes = Packet.byte_size p });
  t.send ctx p

(* The span a freshly-made packet travels under: a child of the thread
   (or delivery) that caused it. *)
let packet_span t ~parent =
  if t.tr_on then Trace.fresh_span t.tr ~parent
  else Trace.null_span

(* ------------------------------------------------------------------ *)
(* Lease bookkeeping.                                                  *)

let leases_on t = t.leases

(* How often the lifecycle tick runs while leases are on; also the
   cadence of outgoing refreshes, so it must stay well under the
   exporters' lease period. *)
let refresh_period t =
  if t.lifecycle.lc_refresh_ns > 0 then t.lifecycle.lc_refresh_ns
  else max 1 (t.lifecycle.lc_lease_ns / 4)

(* How long an unused foreign reference keeps being refreshed. *)
let hold_ns t =
  if t.lifecycle.lc_hold_ns > 0 then t.lifecycle.lc_hold_ns
  else t.lifecycle.lc_lease_ns

(* How long an answered request's id stays in the dedup set: past every
   deadline the sender's retry schedule can produce (backoff deadlines
   plus the jitter bound, doubled for slack), a duplicate can no longer
   arrive as a first delivery. *)
let done_horizon t =
  if t.lifecycle.lc_done_horizon_ns > 0 then t.lifecycle.lc_done_horizon_ns
  else begin
    let r = t.retry in
    let jitter_max = (r.r_timeout_ns / 4) + 1 in
    let total = ref 0 in
    for tries = 1 to r.r_max_tries do
      total :=
        !total
        + int_of_float
            (float_of_int r.r_timeout_ns
            *. (r.r_backoff ** float_of_int (tries - 1)))
        + jitter_max
    done;
    2 * !total
  end

let now_of t = Machine.clock t.vm

let renew_chan_lease t heap_id =
  if leases_on t && not (Hashtbl.mem t.pinned_chans heap_id) then
    Hashtbl.replace t.chan_leases heap_id (now_of t + t.lifecycle.lc_lease_ns)

let renew_class_lease t heap_id =
  if leases_on t && not (Hashtbl.mem t.pinned_classes heap_id) then
    Hashtbl.replace t.class_leases heap_id (now_of t + t.lifecycle.lc_lease_ns)

(* Name-service registrations are pinned: the service hands the
   reference out indefinitely, so its exporter must keep honouring it. *)
let pin_chan t heap_id =
  Hashtbl.replace t.pinned_chans heap_id ();
  Hashtbl.remove t.chan_leases heap_id

let pin_class t heap_id =
  Hashtbl.replace t.pinned_classes heap_id ();
  Hashtbl.remove t.class_leases heap_id

(* Record a use of a foreign reference, so the next lifecycle tick
   refreshes its lease with the exporter. *)
let touch_held t (r : Netref.t) =
  if leases_on t && (r.Netref.site_id <> t.site_id || r.Netref.ip <> t.ip)
  then begin
    let key = (r.Netref.site_id, r.Netref.ip) in
    let h =
      match Hashtbl.find_opt t.held key with
      | Some h -> h
      | None ->
          let h = { hd_chans = Hashtbl.create 8; hd_classes = Hashtbl.create 8 } in
          Hashtbl.add t.held key h;
          h
    in
    let tbl =
      match r.Netref.kind with
      | Netref.Channel -> h.hd_chans
      | Netref.Class -> h.hd_classes
    in
    Hashtbl.replace tbl r.Netref.heap_id (now_of t)
  end

let mark_done t req_id =
  Hashtbl.replace t.done_reqs req_id ();
  Dq.push_back t.done_order (req_id, now_of t)

(* ------------------------------------------------------------------ *)
(* The two-step reference translation.                                 *)

let export_chan t (c : Value.chan) : Netref.t =
  let heap_id = Export_table.export t.chan_exports ~uid:c.Value.ch_uid c in
  renew_chan_lease t heap_id;
  Netref.make ~kind:Netref.Channel ~heap_id ~site_id:t.site_id ~ip:t.ip

let export_class t (c : Value.cls) : Netref.t =
  let key = (c.Value.cls_group, c.Value.cls_index) in
  let bucket =
    Option.value ~default:[] (Hashtbl.find_opt t.class_exports key)
  in
  let heap_id =
    match
      List.find_opt
        (fun ((c', _) : Value.cls * int) -> c'.Value.cls_env == c.Value.cls_env)
        bucket
    with
    | Some (_, heap_id) -> heap_id
    | None ->
        let heap_id = t.next_class_heap in
        t.next_class_heap <- heap_id + 1;
        Hashtbl.replace t.class_exports key ((c, heap_id) :: bucket);
        Hashtbl.add t.class_by_heap heap_id c;
        Hashtbl.add t.class_keys heap_id key;
        heap_id
  in
  renew_class_lease t heap_id;
  Netref.make ~kind:Netref.Class ~heap_id ~site_id:t.site_id ~ip:t.ip

(* Outgoing: local heap values become network references (step one of
   the translation, performed by the sender). *)
let to_wire t (v : Value.t) : Packet.wvalue =
  match v with
  | Value.Vint n -> Packet.Wint n
  | Value.Vbool b -> Packet.Wbool b
  | Value.Vstr s -> Packet.Wstr s
  | Value.Vchan c -> Packet.Wref (export_chan t c)
  | Value.Vnetref r ->
      touch_held t r;
      Packet.Wref r
  | Value.Vclass c -> Packet.Wref (export_class t c)
  | Value.Vclassref r ->
      touch_held t r;
      Packet.Wref r

(* Incoming: references bound to this site are resolved to heap
   pointers (step two, performed by the receiver).  A reference to an
   identifier this site reclaimed fails as {!Stale}, never as a silent
   resolution to the slot's new occupant (generation-packed ids make
   aliasing impossible). *)
let of_wire t (w : Packet.wvalue) : Value.t =
  match w with
  | Packet.Wint n -> Value.Vint n
  | Packet.Wbool b -> Value.Vbool b
  | Packet.Wstr s -> Value.Vstr s
  | Packet.Wref r when r.Netref.site_id = t.site_id && r.Netref.ip = t.ip -> (
      match r.Netref.kind with
      | Netref.Channel -> (
          match Export_table.resolve t.chan_exports r.Netref.heap_id with
          | Some c ->
              renew_chan_lease t r.Netref.heap_id;
              Value.Vchan c
          | None ->
              if Export_table.was_allocated t.chan_exports r.Netref.heap_id
              then stale "reclaimed channel heap id %d" r.Netref.heap_id
              else perr "unknown local channel heap id %d" r.Netref.heap_id)
      | Netref.Class -> (
          match Hashtbl.find_opt t.class_by_heap r.Netref.heap_id with
          | Some c ->
              renew_class_lease t r.Netref.heap_id;
              Value.Vclass c
          | None ->
              if r.Netref.heap_id < t.next_class_heap then
                stale "reclaimed class heap id %d" r.Netref.heap_id
              else perr "unknown local class heap id %d" r.Netref.heap_id))
  | Packet.Wref r ->
      touch_held t r;
      (match r.Netref.kind with
      | Netref.Channel -> Value.Vnetref r
      | Netref.Class -> Value.Vclassref r)

let rtti_of_export t x =
  match List.assoc_opt x t.annotations.a_export_rtti with
  | Some d ->
      let enc = Tyco_support.Wire.encoder () in
      Rtti.encode enc d;
      Tyco_support.Wire.to_string enc
  | None -> ""

(* ------------------------------------------------------------------ *)
(* Request deadlines (FETCH and name-service lookups).                 *)

let emit_failure t label detail =
  let event =
    { Output.site = t.name; label; args = [ Output.Ostr detail ] }
  in
  t.outputs <- event :: t.outputs;
  t.on_output event

(* Deadline of the [tries]-th send: exponential backoff with a
   deterministic per-request jitter that desynchronizes retry bursts
   without consuming simulation randomness. *)
let rto t ~req_id ~tries =
  let r = t.retry in
  let base =
    int_of_float
      (float_of_int r.r_timeout_ns *. (r.r_backoff ** float_of_int (tries - 1)))
  in
  base + ((req_id * 7919 + tries * 104729) mod ((r.r_timeout_ns / 4) + 1))

let send_fetch_req t req_id ~ctx (r : Netref.t) =
  send t ~ctx
    (Packet.Pfetch_req
       { cls = r; req_id; requester_site = t.site_id; requester_ip = t.ip })

let rec arm_fetch_deadline t req_id =
  match t.schedule with
  | None -> ()
  | Some sched -> (
      match Hashtbl.find_opt t.fetch_reqs req_id with
      | None -> ()
      | Some fr ->
          sched ~delay:(rto t ~req_id ~tries:fr.fr_tries) (fun () ->
              fetch_deadline t req_id))

and fetch_deadline t req_id =
  if t.alive then
    match Hashtbl.find_opt t.fetch_reqs req_id with
    | None -> () (* answered in the meantime *)
    | Some fr ->
        if fr.fr_tries >= t.retry.r_max_tries then begin
          Hashtbl.remove t.fetch_reqs req_id;
          mark_done t req_id;
          Netref.Tbl.remove t.fetch_pending fr.fr_ref;
          Stats.Counter.incr t.c_timeouts;
          emit_failure t "fetch-failed" (Format.asprintf "%a" Netref.pp fr.fr_ref);
          t.on_suspect (Printf.sprintf "site#%d" fr.fr_ref.Netref.site_id)
        end
        else begin
          fr.fr_tries <- fr.fr_tries + 1;
          Stats.Counter.incr t.c_retries;
          send_fetch_req t req_id ~ctx:fr.fr_span fr.fr_ref;
          arm_fetch_deadline t req_id
        end

let send_import_req t req_id ~ctx ~site ~name ~is_class =
  send t ~ctx
    (Packet.Pns_lookup
       { site_name = site; id_name = name; want_class = is_class; req_id;
         requester_site = t.site_id; requester_ip = t.ip })

let rec arm_import_deadline t req_id ~is_class =
  match t.schedule with
  | None -> ()
  | Some sched -> (
      match Hashtbl.find_opt t.import_reqs req_id with
      | None -> ()
      | Some ir ->
          sched ~delay:(rto t ~req_id ~tries:ir.ir_tries) (fun () ->
              import_deadline t req_id ~is_class))

and import_deadline t req_id ~is_class =
  if t.alive then
    match Hashtbl.find_opt t.import_reqs req_id with
    | None -> ()
    | Some ir ->
        let site, name = ir.ir_key in
        if ir.ir_tries >= t.retry.r_max_tries then begin
          Hashtbl.remove t.import_reqs req_id;
          mark_done t req_id;
          Stats.Counter.incr t.c_timeouts;
          emit_failure t "import-failed" (Printf.sprintf "%s.%s" site name);
          t.on_suspect site
        end
        else begin
          ir.ir_tries <- ir.ir_tries + 1;
          Stats.Counter.incr t.c_retries;
          send_import_req t req_id ~ctx:ir.ir_span ~site ~name ~is_class;
          arm_import_deadline t req_id ~is_class
        end

(* ------------------------------------------------------------------ *)
(* Outgoing remote operations (drained after each VM quantum).         *)

(* [sp] is the span of the thread that requested the instantiation. *)
let start_fetch t ~sp (r : Netref.t) (args : Value.t array) =
  touch_held t r;
  match Netref.Tbl.find_opt t.fetch_cache r with
  | Some cls ->
      Machine.set_current_span t.vm sp;
      Machine.instantiate_args t.vm cls args
  | None ->
      let pending =
        Option.value ~default:[] (Netref.Tbl.find_opt t.fetch_pending r)
      in
      Netref.Tbl.replace t.fetch_pending r (args :: pending);
      if pending = [] then begin
        Stats.Counter.incr t.c_fetches;
        let req_id = fresh_req t in
        let ctx = packet_span t ~parent:sp in
        Hashtbl.replace t.fetch_reqs req_id
          { fr_ref = r; fr_span = ctx; fr_tries = 1 };
        send_fetch_req t req_id ~ctx r;
        arm_fetch_deadline t req_id
      end

(* [sp] is the span of the VM thread that pushed the op: every packet
   it causes travels as that span's child. *)
let handle_remote_op t (op : Machine.remote_op) (sp : Trace.span) =
  match op with
  | Machine.Rmsg (dst, label, args) ->
      touch_held t dst;
      send t ~ctx:(packet_span t ~parent:sp)
        (Packet.Pmsg
           { dst; label; args = List.map (to_wire t) (Array.to_list args) })
  | Machine.Robj (dst, obj) ->
      touch_held t dst;
      let unit_ = Link.snapshot (Machine.area t.vm) in
      let code_unit, mtable = Bytecode.extract_mtable unit_ obj.Value.obj_mtable in
      send t ~ctx:(packet_span t ~parent:sp)
        (Packet.Pobj
           { dst;
             code = Bytecode.unit_to_string code_unit;
             code_key = (t.ip, t.site_id, obj.Value.obj_mtable);
             mtable;
             env = List.map (to_wire t) (Array.to_list obj.Value.obj_env) })
  | Machine.Rfetch (r, args) -> start_fetch t ~sp r args
  | Machine.Rexport_name (x, chan) ->
      let nref = export_chan t chan in
      pin_chan t nref.Netref.heap_id;
      send t ~ctx:(packet_span t ~parent:sp)
        (Packet.Pns_register
           { site_name = t.name; id_name = x; nref;
             rtti = rtti_of_export t x })
  | Machine.Rexport_class (x, cls) ->
      let nref = export_class t cls in
      pin_class t nref.Netref.heap_id;
      send t ~ctx:(packet_span t ~parent:sp)
        (Packet.Pns_register
           { site_name = t.name; id_name = x; nref;
             rtti = rtti_of_export t x })
  | Machine.Rimport { site; name; is_class; cont; captured } ->
      let req_id = fresh_req t in
      let ctx = packet_span t ~parent:sp in
      Hashtbl.replace t.import_reqs req_id
        { ir_cont = cont; ir_captured = captured; ir_key = (site, name);
          ir_span = ctx; ir_tries = 1 };
      send_import_req t req_id ~ctx ~site ~name ~is_class;
      arm_import_deadline t req_id ~is_class

(* ------------------------------------------------------------------ *)
(* Incoming packets.                                                   *)

let resolve_local_chan t (r : Netref.t) : Value.chan =
  if r.Netref.site_id <> t.site_id || r.Netref.ip <> t.ip then
    perr "packet for site %d delivered to site %d" r.Netref.site_id t.site_id;
  match Export_table.resolve t.chan_exports r.Netref.heap_id with
  | Some c ->
      renew_chan_lease t r.Netref.heap_id;
      c
  | None ->
      if Export_table.was_allocated t.chan_exports r.Netref.heap_id then
        stale "reclaimed channel heap id %d" r.Netref.heap_id
      else perr "unknown channel heap id %d" r.Netref.heap_id

let link_once t ~ctx cache counter key code root_of =
  match Lru.find cache key with
  | Some linked -> linked
  | None ->
      let sub =
        try Bytecode.unit_of_string code
        with Tyco_support.Wire.Malformed m -> perr "malformed byte-code: %s" m
      in
      Stats.Counter.incr t.c_links;
      if t.tr_on then
        Trace.emit t.tr ~ts:(Machine.clock t.vm) ~track:t.site_id ~span:ctx
          (Trace.Link_code { bytes = String.length code });
      let offsets = Link.link (Machine.area t.vm) sub in
      let linked = root_of offsets in
      (match Lru.add cache key linked with
      | None -> ()
      | Some _ ->
          Stats.Counter.incr counter;
          if t.tr_on then
            Trace.emit t.tr ~ts:(Machine.clock t.vm) ~track:t.site_id ~span:ctx
              (Trace.Reclaim { rc = Trace.Rc_code_cache; n = 1 }));
      linked

(* [ctx] is the packet's span: everything its processing causes — the
   threads injections spawn, the reply a FETCH request triggers — is
   recorded as its descendant. *)
let handle_packet_inner t ~ctx (p : Packet.t) =
  Machine.set_current_span t.vm ctx;
  match p with
  | Packet.Pmsg { dst; label; args } ->
      Stats.Counter.incr t.c_ships_in;
      let chan = resolve_local_chan t dst in
      Machine.inject_msg t.vm chan label (List.map (of_wire t) args)
  | Packet.Pobj { dst; code; code_key; mtable; env } ->
      Stats.Counter.incr t.c_ships_in;
      let chan = resolve_local_chan t dst in
      let area_mt =
        link_once t ~ctx t.obj_code_cache t.c_cache_evictions code_key code
          (fun (o : Link.offsets) -> mtable + o.Link.mt_off)
      in
      let obj =
        { Value.obj_mtable = area_mt;
          obj_env = Array.of_list (List.map (of_wire t) env) }
      in
      if t.tr_on then
        Trace.emit t.tr ~ts:(Machine.clock t.vm) ~track:t.site_id ~span:ctx
          Trace.Obj_commit;
      Machine.inject_obj t.vm chan obj
  | Packet.Pfetch_req { cls; req_id; requester_site; requester_ip } ->
      if cls.Netref.kind <> Netref.Class then perr "fetch of a channel reference";
      let c =
        match Hashtbl.find_opt t.class_by_heap cls.Netref.heap_id with
        | Some c ->
            renew_class_lease t cls.Netref.heap_id;
            c
        | None ->
            if cls.Netref.heap_id < t.next_class_heap then
              stale "reclaimed class heap id %d" cls.Netref.heap_id
            else perr "unknown class heap id %d" cls.Netref.heap_id
      in
      let unit_ = Link.snapshot (Machine.area t.vm) in
      let code_unit, group = Bytecode.extract_group unit_ c.Value.cls_group in
      let g = Link.group (Machine.area t.vm) c.Value.cls_group in
      let ncap = Array.length g.Block.grp_captures in
      let env_captures =
        List.init ncap (fun i -> to_wire t c.Value.cls_env.(i))
      in
      send t ~ctx:(packet_span t ~parent:ctx)
        (Packet.Pfetch_rep
           { req_id;
             dst_site = requester_site;
             dst_ip = requester_ip;
             code = Bytecode.unit_to_string code_unit;
             code_key = (t.ip, t.site_id, c.Value.cls_group);
             group;
             index = c.Value.cls_index;
             env_captures })
  | Packet.Pfetch_rep { req_id; _ } when not (Hashtbl.mem t.fetch_reqs req_id) ->
      (* a late duplicate of an already-answered (or abandoned) FETCH:
         retransmission makes these normal, not a protocol violation.
         With the dedup record pruned past the retry horizon, any id
         below the allocation watermark gets the same benefit of the
         doubt; only an id this site never issued raises. *)
      if not (Hashtbl.mem t.done_reqs req_id) && req_id >= t.next_req then
        perr "fetch reply for unknown request %d" req_id
  | Packet.Pfetch_rep { req_id; code; code_key; group; index; env_captures; _ } ->
      let nref =
        match Hashtbl.find_opt t.fetch_reqs req_id with
        | Some fr -> fr.fr_ref
        | None -> assert false (* previous arm catches this *)
      in
      Hashtbl.remove t.fetch_reqs req_id;
      mark_done t req_id;
      let area_grp =
        link_once t ~ctx t.grp_code_cache t.c_cache_evictions code_key code
          (fun (o : Link.offsets) -> group + o.Link.grp_off)
      in
      let g = Link.group (Machine.area t.vm) area_grp in
      let ncap = Array.length g.Block.grp_captures in
      let k = Array.length g.Block.grp_classes in
      if List.length env_captures <> ncap then
        perr "fetch reply capture arity mismatch";
      let shared = Array.make (ncap + k) (Value.Vint 0) in
      List.iteri (fun i w -> shared.(i) <- of_wire t w) env_captures;
      for i = 0 to k - 1 do
        shared.(ncap + i) <-
          Value.Vclass { Value.cls_group = area_grp; cls_index = i; cls_env = shared }
      done;
      if index < 0 || index >= k then perr "fetch reply class index out of range";
      let cls =
        match shared.(ncap + index) with
        | Value.Vclass c -> c
        | _ -> assert false
      in
      Netref.Tbl.replace t.fetch_cache nref cls;
      let pending =
        Option.value ~default:[] (Netref.Tbl.find_opt t.fetch_pending nref)
      in
      Netref.Tbl.remove t.fetch_pending nref;
      List.iter
        (fun args -> Machine.instantiate_args t.vm cls args)
        (List.rev pending)
  | Packet.Pns_reply { req_id; result; rtti; _ } -> (
      match Hashtbl.find_opt t.import_reqs req_id with
      | None ->
          if not (Hashtbl.mem t.done_reqs req_id) && req_id >= t.next_req then
            perr "name service reply for unknown request %d" req_id
      | Some { ir_cont = cont; ir_captured = captured; ir_key = key; _ } -> (
          Hashtbl.remove t.import_reqs req_id;
          mark_done t req_id;
          match result with
          | None -> perr "name service reported unresolvable import"
          | Some r ->
              (* dynamic type check: the exporter's descriptor against
                 every local expectation for this identifier *)
              (if not (String.equal rtti "") then
                 let remote =
                   try Rtti.decode (Tyco_support.Wire.decoder rtti)
                   with Tyco_support.Wire.Malformed m ->
                     perr "malformed type descriptor: %s" m
                 in
                 List.iter
                   (fun (k, expect) ->
                     if k = key && not (Rtti.compatible expect remote) then
                       perr
                         "type mismatch on import %s.%s: expected %s, \
                          exporter provides %s"
                         (fst key) (snd key)
                         (Format.asprintf "%a" Rtti.pp expect)
                         (Format.asprintf "%a" Rtti.pp remote))
                   t.annotations.a_import_expect);
              let v = of_wire t (Packet.Wref r) in
              Machine.spawn t.vm ~block:cont ~env:(v :: captured)))
  | Packet.Prelease { chans; classes; _ } ->
      (* an importer still holds these: renew whatever is still live
         (a refresh racing the reclamation sweep loses — the importer
         sees a stale-ref on next use, the documented failure mode) *)
      List.iter
        (fun id ->
          match Export_table.resolve t.chan_exports id with
          | Some _ -> renew_chan_lease t id
          | None -> ())
        chans;
      List.iter
        (fun id -> if Hashtbl.mem t.class_by_heap id then renew_class_lease t id)
        classes
  | Packet.Pns_register _ | Packet.Pns_lookup _ ->
      perr "name-service packet delivered to an ordinary site"

let handle_packet t ~ctx (p : Packet.t) =
  Stats.Counter.incr t.c_pk_in;
  try handle_packet_inner t ~ctx p
  with Stale detail ->
    Stats.Counter.incr t.c_stale_refs;
    if t.tr_on then
      Trace.emit t.tr ~ts:(Machine.clock t.vm) ~track:t.site_id ~span:ctx
        (Trace.Stale_ref { pk = Packet.trace_pk p });
    emit_failure t "stale-ref" detail

(* ------------------------------------------------------------------ *)
(* The lifecycle tick: reclamation and lease refresh.                  *)

let trace_reclaim t ~now rc n =
  if n > 0 && t.tr_on then
    Trace.emit t.tr ~ts:now ~track:t.site_id ~span:Trace.null_span
      (Trace.Reclaim { rc; n })

(* Expired ids are removed in sorted order so the free list — and with
   it every later id allocation — is deterministic regardless of
   hash-table iteration order. *)
let expired_ids leases ~now =
  List.sort compare
    (Hashtbl.fold (fun id exp acc -> if exp <= now then id :: acc else acc)
       leases [])

let lifecycle_tick t ~now =
  (* dedup records past the sender's retry horizon *)
  let horizon = done_horizon t in
  let pruned = ref 0 in
  let rec prune () =
    match Dq.peek_front t.done_order with
    | Some (req_id, done_at) when done_at + horizon <= now ->
        ignore (Dq.pop_front t.done_order);
        Hashtbl.remove t.done_reqs req_id;
        incr pruned;
        prune ()
    | _ -> ()
  in
  prune ();
  if !pruned > 0 then begin
    Stats.Counter.add t.c_done_pruned !pruned;
    trace_reclaim t ~now Trace.Rc_done_req !pruned
  end;
  if leases_on t then begin
    (* exporter side: drop exports whose leases expired *)
    let dead_chans = expired_ids t.chan_leases ~now in
    List.iter
      (fun id ->
        Hashtbl.remove t.chan_leases id;
        ignore (Export_table.remove t.chan_exports id))
      dead_chans;
    let n_chans = List.length dead_chans in
    if n_chans > 0 then begin
      Stats.Counter.add t.c_leases_expired n_chans;
      Stats.Counter.add t.c_ids_reclaimed n_chans;
      trace_reclaim t ~now Trace.Rc_chan_export n_chans
    end;
    let dead_classes = expired_ids t.class_leases ~now in
    List.iter
      (fun id ->
        Hashtbl.remove t.class_leases id;
        Hashtbl.remove t.class_by_heap id;
        match Hashtbl.find_opt t.class_keys id with
        | None -> ()
        | Some key ->
            Hashtbl.remove t.class_keys id;
            let bucket =
              Option.value ~default:[] (Hashtbl.find_opt t.class_exports key)
            in
            (match List.filter (fun (_, hid) -> hid <> id) bucket with
            | [] -> Hashtbl.remove t.class_exports key
            | rest -> Hashtbl.replace t.class_exports key rest))
      dead_classes;
    let n_classes = List.length dead_classes in
    if n_classes > 0 then begin
      Stats.Counter.add t.c_leases_expired n_classes;
      Stats.Counter.add t.c_ids_reclaimed n_classes;
      trace_reclaim t ~now Trace.Rc_class_export n_classes
    end;
    (* importer side: refresh refs used within the hold period, forget
       the rest (for classes, together with their fetch-cache entry) *)
    let hold = hold_ns t in
    let dropped = ref 0 in
    let origins =
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.held [])
    in
    List.iter
      (fun ((origin_site, origin_ip) as key) ->
        let h = Hashtbl.find t.held key in
        let split tbl =
          Hashtbl.fold
            (fun id last (keep, drop) ->
              if last + hold <= now then (keep, id :: drop)
              else (id :: keep, drop))
            tbl ([], [])
        in
        let keep_chans, drop_chans = split h.hd_chans in
        let keep_classes, drop_classes = split h.hd_classes in
        List.iter (Hashtbl.remove h.hd_chans) drop_chans;
        List.iter
          (fun id ->
            Hashtbl.remove h.hd_classes id;
            Netref.Tbl.remove t.fetch_cache
              (Netref.make ~kind:Netref.Class ~heap_id:id ~site_id:origin_site
                 ~ip:origin_ip))
          drop_classes;
        dropped := !dropped + List.length drop_chans + List.length drop_classes;
        if keep_chans = [] && keep_classes = [] then Hashtbl.remove t.held key
        else begin
          let chans = List.sort compare keep_chans in
          let classes = List.sort compare keep_classes in
          Stats.Counter.incr t.c_lease_refreshes;
          if t.tr_on then
            Trace.emit t.tr ~ts:now ~track:t.site_id ~span:Trace.null_span
              (Trace.Lease_refresh
                 { chans = List.length chans; classes = List.length classes });
          send t ~ctx:(packet_span t ~parent:Trace.null_span)
            (Packet.Prelease { origin_site; origin_ip; chans; classes })
        end)
      origins;
    if !dropped > 0 then begin
      Stats.Counter.add t.c_held_dropped !dropped;
      trace_reclaim t ~now Trace.Rc_import_hold !dropped
    end
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle.                                                          *)

let io_handler t label args =
  if String.equal label "readi" then
    (* input: reply on the argument channel with the next supplied
       integer; a starved read blocks silently (paper §5: the I/O port
       both receives data from and provides data to programs) *)
    match (args, t.inputs) with
    | [ Value.Vchan k ], v :: rest ->
        t.inputs <- rest;
        Machine.inject_msg t.vm k "val" [ Value.Vint v ]
    | [ Value.Vchan _ ], [] -> ()
    | _ -> perr "io!readi expects one local reply channel"
  else begin
    let event =
      { Output.site = t.name; label; args = List.map Output.of_vm_value args }
    in
    t.outputs <- event :: t.outputs;
    t.on_output event
  end

let start t =
  let io = Machine.builtin_chan t.vm "io" (io_handler t) in
  Machine.spawn_entry t.vm ~entry:t.entry ~io

let deliver ?(ctx = Trace.null_span) ?(now = 0) t p =
  if t.alive then Dq.push_back t.inbox (p, ctx, now)

let busy t =
  t.alive && (Machine.runnable t.vm || not (Dq.is_empty t.inbox))

let outstanding t =
  if t.alive then Hashtbl.length t.fetch_reqs + Hashtbl.length t.import_reqs
  else 0

(* Costs (virtual ns) of the non-VM work a site does in a quantum. *)
let packet_handling_cost = 800
let remote_op_cost = 600
let lifecycle_tick_cost = 300

let pump ?(now = 0) t ~quantum =
  if not t.alive then 0
  else begin
    let cost = ref 0 in
    let rec drain_inbox () =
      match Dq.pop_front t.inbox with
      | None -> ()
      | Some (p, ctx, enq) ->
          Machine.set_clock t.vm (now + !cost);
          Stats.Dist.add_int t.d_queue_wait (now + !cost - enq);
          cost := !cost + packet_handling_cost;
          handle_packet t ~ctx p;
          drain_inbox ()
    in
    drain_inbox ();
    Machine.set_clock t.vm (now + !cost);
    let _instrs, vm_cost = Machine.run t.vm ~budget:quantum in
    Stats.Dist.add_int t.d_execute vm_cost;
    cost := !cost + vm_cost;
    let rec drain_ops () =
      match Machine.pop_remote_traced t.vm with
      | None -> ()
      | Some (op, sp) ->
          cost := !cost + remote_op_cost;
          handle_remote_op t op sp;
          drain_ops ()
    in
    drain_ops ();
    (* lifecycle work piggybacks on quanta the site runs anyway — no
       self-rearming timers, so quiescence detection is untouched *)
    (let lnow = now + !cost in
     if lnow >= t.next_lifecycle then begin
       Machine.set_clock t.vm lnow;
       lifecycle_tick t ~now:lnow;
       cost := !cost + lifecycle_tick_cost;
       let period =
         if leases_on t then refresh_period t else max 1 (done_horizon t / 4)
       in
       t.next_lifecycle <- lnow + period
     end);
    !cost
  end

let kill t =
  t.alive <- false;
  Dq.clear t.inbox

(* ------------------------------------------------------------------ *)
(* Memory accounting (for reports and the soak benchmarks).            *)

type mem_stats = {
  m_chan_live : int;
  m_chan_allocated : int;
  m_chan_reclaimed : int;
  m_class_live : int;
  m_class_allocated : int;
  m_class_reclaimed : int;
  m_done_reqs : int;
  m_obj_cache : int;
  m_grp_cache : int;
  m_fetch_cache : int;
  m_held : int;
}

let memory t =
  let class_live = Hashtbl.length t.class_by_heap in
  let held =
    Hashtbl.fold
      (fun _ h acc ->
        acc + Hashtbl.length h.hd_chans + Hashtbl.length h.hd_classes)
      t.held 0
  in
  { m_chan_live = Export_table.live t.chan_exports;
    m_chan_allocated = Export_table.allocated t.chan_exports;
    m_chan_reclaimed = Export_table.reclaimed t.chan_exports;
    m_class_live = class_live;
    m_class_allocated = t.next_class_heap;
    m_class_reclaimed = t.next_class_heap - class_live;
    m_done_reqs = Hashtbl.length t.done_reqs;
    m_obj_cache = Lru.length t.obj_code_cache;
    m_grp_cache = Lru.length t.grp_code_cache;
    m_fetch_cache = Netref.Tbl.length t.fetch_cache;
    m_held = held }

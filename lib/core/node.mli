(** A DiTyCO node (paper Fig. 4): one per IP address, hosting a pool of
    sites that share the node's processors.

    The paper's nodes are dual-processor PCs; here each node models
    [cores] processors as earliest-available timestamps, so concurrent
    sites on one node serialize when they outnumber the cores — the
    effect measured by the scaling experiment E9. *)

type t

val create : node_id:int -> ip:int -> cores:int -> t
val node_id : t -> int
val ip : t -> int
val add_site : t -> Site.t -> unit
val sites : t -> Site.t list

val earliest_core : t -> int * int
(** [(core index, time it becomes free)]. *)

val occupy : t -> core:int -> until:int -> unit

val reset_cores : t -> unit
(** Forget core occupancy — used when a node migrates between shards,
    whose virtual clocks are not comparable. *)

(** {1 Transport endpoint}

    Sequence numbering and duplicate suppression of the node's daemon,
    used by the cluster's at-least-once delivery layer. *)

val fresh_seq : t -> dst_ip:int -> int
(** Next sequence number of this node's stream towards [dst_ip]
    (numbered per destination so receiver windows stay gapless). *)

val admit : t -> src_ip:int -> seq:int -> bool
(** [true] exactly the first time a given [(src_ip, seq)] is offered;
    retransmitted or duplicated copies return [false]. *)

val rx_floor : t -> src_ip:int -> int
(** Cumulative-ack floor towards [src_ip]: every sequence number below
    it has been delivered contiguously ([0] before any traffic).  This
    is the value batched frames piggyback back to the peer. *)

val dedup_window_size : t -> int
(** Out-of-order entries currently buffered across all peers — bounded
    by in-flight reordering, not by traffic volume. *)

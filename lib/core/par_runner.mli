(** Parallel execution engine: the simulated cluster sharded over
    OCaml 5 domains.

    Shard [s] owns the nodes with [ip mod domains = s] and everything
    beneath them — sites, VMs, export tables, intern areas, statistics
    — plus its own {!Tyco_net.Simnet} (clock, heap, PRNG, derived from
    the run seed per owner).  Cross-shard packets travel as envelopes
    through one bounded lock-free {!Tyco_support.Spsc_ring} per
    ordered shard pair; the PR 2 same-node fast path is preserved
    intact inside each shard.  A handed-off packet sent at
    sender-virtual time [s] with wire delay [d] is delivered at
    receiver-virtual time [max (receiver now) (s + d)], so delivery
    timestamps stay monotone per receiver.

    This engine preserves the deterministic engine's output {e sets};
    output {e timestamps} (and their order) depend on domain
    interleaving.  [--domains 1] therefore dispatches to {!Cluster},
    not here — see {!Api.run_parallel}.

    Observability: when [config.tracing] each shard owns a private
    {!Tyco_support.Trace} collector whose span ids stride by the
    domain count ([span_base = shard], [span_stride = domains]) so
    they are globally unique without a shared counter; envelopes carry
    the sending span, and the collectors are folded with
    {!Tyco_support.Trace.merge} into one shard-tagged archive at
    quiescence.  When [config.metrics] each shard owns a private
    {!Tyco_support.Metrics} registry, merged the same way.  Both are
    the disabled singletons when off, so every instrumentation point
    on the hot path costs one load-and-branch.

    Configs requesting machinery the rings make redundant (reliable
    delivery, fault injection, replicated name service) are rejected
    with [Invalid_argument]: those modes belong to the deterministic
    single-domain engine. *)

(** Per-shard section of the run report: ring traffic, occupancy
    high-water, backpressure and parking — the signals that say where
    a parallel run's time went. *)
type shard_stat = {
  ss_shard : int;
  ss_sites : int;
  ss_events : int;       (** simulation events this shard executed *)
  ss_virtual_ns : int;   (** the shard clock at quiescence *)
  ss_packets : int;
  ss_same_node : int;
  ss_handoffs_in : int;  (** envelopes this shard received *)
  ss_ring_pushed : int;  (** envelopes this shard pushed outbound *)
  ss_ring_popped : int;  (** envelopes this shard consumed *)
  ss_ring_hiwater : int; (** max outbound-ring occupancy at push *)
  ss_parks : int;
  ss_drains : int;       (** backpressure drain passes while pushing *)
}

(** A coordinator-side mid-run observation: only whole-run atomics and
    ring counters are read (never a shard heap), so taking one is safe
    while the domains run.  [tycosh --metrics-out] streams these as
    JSONL. *)
type snapshot = {
  sn_wall_ms : float;
  sn_inflight : int;
  sn_executed : int array;  (** per shard, monotone *)
  sn_pending : int array;   (** per-shard heap sizes *)
  sn_ring_pushed : int;
  sn_ring_popped : int;
}

type result = {
  outputs : (int * Output.event) list;
      (** merged across shards, sorted by (timestamp, site) *)
  virtual_ns : int;  (** max over the per-shard clocks *)
  packets : int;
  bytes : int;
  same_node_fast : int;
  handoffs : int;  (** envelopes delivered through rings *)
  ring_pushed : int;  (** total ring pushes (= pops after a clean run) *)
  ring_popped : int;
  parks : int;  (** idle/backpressure parks across all shards *)
  domains : int;
  instructions : int;  (** total VM instructions, for throughput *)
  wall_ns : int;
  dead_letters : int;
  suspected : (int * string) list;
  sites_per_shard : int array;
  events : int;  (** simulation events across all shards *)
  clean : bool;
      (** quiesced with every ring drained, no in-flight envelopes and
          every shard heap empty — the sharding smoke test asserts
          this together with [ring_pushed = ring_popped] *)
  timed_out : bool;
  trace : Tyco_support.Trace.t;
      (** the merged shard-tagged collector ({!Tyco_support.Trace.merge});
          the disabled singleton unless [config.tracing] *)
  metrics : Tyco_support.Metrics.t;
      (** the merged registry; the disabled singleton unless
          [config.metrics] *)
  shard_stats : shard_stat array;
  sites : Site.t list;
      (** every site across all shards — safe to read because
          [Domain.join] happened before the result was built *)
}

val run :
  ?config:Cluster.config ->
  ?placement:(string -> int) ->
  ?inputs:(string -> int list) ->
  ?max_events:int ->
  ?max_wall_ms:int ->
  ?on_snapshot:(snapshot -> unit) ->
  ?snapshot_every_ms:int ->
  domains:int ->
  (string * Tyco_compiler.Block.unit_) list ->
  result
(** [run ~domains units] executes the compiled sites on [domains]
    domains (plus the calling domain, which only coordinates
    termination).  [max_events] bounds each shard's event count
    (default 10M, the same livelock guard as {!Tyco_net.Simnet.run});
    [max_wall_ms] (default 120s) bounds wall time — exceeding it stops
    the run with [timed_out = true] instead of hanging.
    [on_snapshot] is called from the coordinating domain roughly every
    [snapshot_every_ms] wall milliseconds (default 100) while the run
    is live. *)

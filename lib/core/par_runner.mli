(** Parallel execution engine: the simulated cluster sharded over
    OCaml 5 domains.

    Shard [s] owns the nodes with [ip mod domains = s] and everything
    beneath them — sites, VMs, export tables, intern areas, statistics
    — plus its own {!Tyco_net.Simnet} (clock, heap, PRNG, derived from
    the run seed per owner).  Cross-shard packets travel as envelopes
    through one bounded lock-free {!Tyco_support.Spsc_ring} per
    ordered shard pair; the PR 2 same-node fast path is preserved
    intact inside each shard.  A handed-off packet sent at
    sender-virtual time [s] with wire delay [d] is delivered at
    receiver-virtual time [max (receiver now) (s + d)], so delivery
    timestamps stay monotone per receiver.

    This engine preserves the deterministic engine's output {e sets};
    output {e timestamps} (and their order) depend on domain
    interleaving.  [--domains 1] therefore dispatches to {!Cluster},
    not here — see {!Api.run_parallel}.

    Configs requesting machinery the rings make redundant (reliable
    delivery, fault injection, tracing, replicated name service) are
    rejected with [Invalid_argument]: those modes belong to the
    deterministic single-domain engine. *)

type result = {
  outputs : (int * Output.event) list;
      (** merged across shards, sorted by (timestamp, site) *)
  virtual_ns : int;  (** max over the per-shard clocks *)
  packets : int;
  bytes : int;
  same_node_fast : int;
  handoffs : int;  (** envelopes delivered through rings *)
  ring_pushed : int;  (** total ring pushes (= pops after a clean run) *)
  ring_popped : int;
  parks : int;  (** idle/backpressure parks across all shards *)
  domains : int;
  instructions : int;  (** total VM instructions, for throughput *)
  wall_ns : int;
  dead_letters : int;
  suspected : (int * string) list;
  sites_per_shard : int array;
  events : int;  (** simulation events across all shards *)
  clean : bool;
      (** quiesced with every ring drained, no in-flight envelopes and
          every shard heap empty — the sharding smoke test asserts
          this together with [ring_pushed = ring_popped] *)
  timed_out : bool;
}

val run :
  ?config:Cluster.config ->
  ?placement:(string -> int) ->
  ?inputs:(string -> int list) ->
  ?max_events:int ->
  ?max_wall_ms:int ->
  domains:int ->
  (string * Tyco_compiler.Block.unit_) list ->
  result
(** [run ~domains units] executes the compiled sites on [domains]
    domains (plus the calling domain, which only coordinates
    termination).  [max_events] bounds each shard's event count
    (default 10M, the same livelock guard as {!Tyco_net.Simnet.run});
    [max_wall_ms] (default 120s) bounds wall time — exceeding it stops
    the run with [timed_out = true] instead of hanging. *)

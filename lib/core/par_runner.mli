(** Parallel execution engine: the simulated cluster sharded over
    OCaml 5 domains.

    Which nodes a shard owns is decided by a {!Placement} policy
    ([ip mod domains] by default; greedy bin-packing over site counts
    or profiled node weights when the caller opts in) — plus
    everything beneath them: sites, VMs, export tables, intern areas,
    statistics, and the shard's own {!Tyco_net.Simnet} (clock, heap,
    PRNG, derived from the run seed per owner).  Cross-shard packets
    travel as envelope {e batches} through one bounded lock-free
    {!Tyco_support.Spsc_ring} per ordered shard pair: each shard
    coalesces same-destination envelopes and flushes each buffer as
    one ring element at its step/park boundary (or when it reaches the
    batch cap), so one ring push, one in-flight increment and one
    consumer pop amortize over the whole batch.  The PR 2 same-node
    fast path is preserved intact inside each shard.  A handed-off
    packet sent at sender-virtual time [s] with wire delay [d] is
    delivered at receiver-virtual time [max (receiver now) (s + d)],
    so delivery timestamps stay monotone per receiver.

    This engine preserves the deterministic engine's output {e sets};
    output {e timestamps} (and their order) depend on domain
    interleaving.  [--domains 1] therefore dispatches to {!Cluster},
    not here — see {!Api.run_parallel}.

    Observability: when [config.tracing] each shard owns a private
    {!Tyco_support.Trace} collector whose span ids stride by the
    domain count ([span_base = shard], [span_stride = domains]) so
    they are globally unique without a shared counter; envelopes carry
    the sending span, and the collectors are folded with
    {!Tyco_support.Trace.merge} into one shard-tagged archive at
    quiescence.  When [config.metrics] each shard owns a private
    {!Tyco_support.Metrics} registry, merged the same way.  Both are
    the disabled singletons when off, so every instrumentation point
    on the hot path costs one load-and-branch.

    Dynamic rebalancing (PR 10): node ownership can change mid-run.
    The node-to-shard map is an indirection table of atomics; the
    coordinator watches per-node load and, past a threshold, has the
    owning shard {e ship} the node through the ordinary rings as a
    migration element.  One [g_inflight] unit is held from ship to
    install (quiescence stays exact with a node in transit), packets
    that arrive at the old owner are {e forwarded} along the table,
    and packets that race ahead of the envelope park in the receiving
    shard's limbo until the install drains them.  Totals are exported
    as [migrations] / [migration_ns] / [forwarded_envelopes].

    Configs requesting machinery the rings make redundant (reliable
    delivery, fault injection, replicated name service) are rejected
    with [Invalid_argument]: those modes belong to the deterministic
    single-domain engine.  So is tracing combined with rebalancing: a
    site's trace collector is captured at creation and cannot follow
    the site across domains. *)

exception Shard_failure of int * string
(** An exception that escaped one shard's domain, re-raised at join as
    [(shard id, message)].  {!Api.run_parallel} maps it to
    [Api.Error (Runtime_error _)]. *)

(** Per-shard section of the run report: ring traffic, occupancy
    high-water, backpressure and parking — the signals that say where
    a parallel run's time went. *)
type shard_stat = {
  ss_shard : int;
  ss_sites : int;
  ss_events : int;       (** simulation events this shard executed *)
  ss_virtual_ns : int;   (** the shard clock at quiescence *)
  ss_packets : int;
  ss_same_node : int;
  ss_handoffs_in : int;  (** envelopes this shard received *)
  ss_ring_pushed : int;  (** ring elements this shard pushed outbound *)
  ss_ring_popped : int;  (** ring elements this shard consumed *)
  ss_ring_hiwater : int; (** max outbound-ring occupancy at push *)
  ss_parks : int;
  ss_drains : int;       (** backpressure drain passes while pushing *)
  ss_weight : float;     (** placement weight this shard was assigned *)
}

(** A coordinator-side mid-run observation: only whole-run atomics and
    ring counters are read (never a shard heap), so taking one is safe
    while the domains run.  [tycosh --metrics-out] streams these as
    JSONL. *)
type snapshot = {
  sn_wall_ms : float;
  sn_inflight : int;
  sn_executed : int array;  (** per shard, monotone *)
  sn_pending : int array;   (** per-shard heap sizes *)
  sn_ring_pushed : int;     (** ring elements *)
  sn_ring_popped : int;
  sn_migrations : int;      (** node installs completed so far *)
}

(** Dynamic-rebalancing knobs ([tycosh --rebalance
    interval:MS,threshold:R]): every [rb_interval_ms] wall
    milliseconds the coordinator turns the per-node load-counter
    deltas into a load estimate and, when the max-over-mean per-shard
    load exceeds [rb_threshold], issues at most one migration
    ({!Placement.choose_migration}).  One migration is outstanding at
    a time, so each decision sees the previous one's effect. *)
type rebalance = {
  rb_interval_ms : int;
  rb_threshold : float;
}

type result = {
  outputs : (int * Output.event) list;
      (** merged across shards, sorted by (timestamp, site) *)
  virtual_ns : int;  (** max over the per-shard clocks *)
  packets : int;
  bytes : int;
  same_node_fast : int;
  handoffs : int;  (** envelopes delivered through rings *)
  ring_pushed : int;
      (** total ring pushes, i.e. batches (= pops after a clean run) *)
  ring_popped : int;
  ring_batch_fill_mean : float;
      (** mean envelopes per ring push — how well handoff batching
          amortized the per-push synchronization; 0 when nothing was
          handed off *)
  parks : int;  (** idle/backpressure parks across all shards *)
  domains : int;
  instructions : int;  (** total VM instructions, for throughput *)
  wall_ns : int;
  dead_letters : int;
  migrations : int;
      (** node migrations completed (counted at install) *)
  migration_ns : int;
      (** host ns from ship to install, summed over migrations *)
  forwarded_envelopes : int;
      (** packets that arrived at a node's old owner after it moved
          and were re-routed along the indirection table *)
  suspected : (int * string) list;
  sites_per_shard : int array;
  placement_weights : float array;
      (** per-shard static weight the placement assigned (site counts
          under [Mod]/[Greedy], profile weights under [Profile]) *)
  node_weights : float array;
      (** measured per-node VM instruction counts — feed back as
          [Placement.Profile] (via [--placement profile:FILE]) for the
          next run of the same workload *)
  events : int;  (** simulation events across all shards *)
  clean : bool;
      (** quiesced with every ring drained, no in-flight elements,
          every shard heap empty and every limbo empty — the sharding
          smoke and migration tests assert this together with
          [ring_pushed = ring_popped] *)
  timed_out : bool;
  trace : Tyco_support.Trace.t;
      (** the merged shard-tagged collector ({!Tyco_support.Trace.merge});
          the disabled singleton unless [config.tracing] *)
  metrics : Tyco_support.Metrics.t;
      (** the merged registry; the disabled singleton unless
          [config.metrics] *)
  shard_stats : shard_stat array;
  sites : Site.t list;
      (** every site across all shards — safe to read because
          [Domain.join] happened before the result was built *)
}

val run :
  ?config:Cluster.config ->
  ?placement:(string -> int) ->
  ?policy:Placement.policy ->
  ?inputs:(string -> int list) ->
  ?max_events:int ->
  ?max_wall_ms:int ->
  ?on_snapshot:(snapshot -> unit) ->
  ?snapshot_every_ms:int ->
  ?rebalance:rebalance ->
  ?force_migrations:(int * int) list ->
  domains:int ->
  (string * Tyco_compiler.Block.unit_) list ->
  result
(** [run ~domains units] executes the compiled sites on [domains]
    domains (plus the calling domain, which only coordinates
    termination).  [placement] maps site names to node ips (default
    round-robin); [policy] maps node ips to shards (default
    {!Placement.Mod} — see {!Placement.assign}; node counts below,
    equal to, or far above [domains] are all supported).  [max_events]
    bounds the event count {e summed over all shards} (default 10M,
    the same livelock-guard semantics as {!Tyco_net.Simnet.run} at
    one domain — not [domains * max_events]); [max_wall_ms] (default 120s)
    bounds wall time — exceeding it stops the run with
    [timed_out = true] instead of hanging.  [on_snapshot] is called
    from the coordinating domain roughly every [snapshot_every_ms]
    wall milliseconds (default 100) while the run is live.

    [rebalance] turns on dynamic rebalancing (see {!type:rebalance}).
    [force_migrations] is the deterministic test hook: a list of
    [(node ip, destination shard)] moves issued unconditionally —
    those whose command slot is free are posted before the domains
    spawn and are guaranteed to complete in a clean run.  Node 0 (the
    name-service host) cannot move; out-of-range entries raise
    [Invalid_argument], as does combining either option with
    [config.tracing]. *)

(* Receiver-side duplicate suppression: for one peer, [floor] is the
   lowest sequence number not yet delivered contiguously and [seen]
   the out-of-order ones above it.  Because senders number packets per
   destination, the stream has no permanent holes and the window stays
   a handful of entries even under heavy reordering. *)
type rx_window = { mutable floor : int; seen : (int, unit) Hashtbl.t }

type t = {
  node_id : int;
  ip : int;
  cores : int array;  (* time each core becomes free *)
  mutable sites : Site.t list;
  (* transport endpoint state of the node's daemon (TyCOd) *)
  tx_seq : (int, int ref) Hashtbl.t;    (* dst ip -> next sequence no. *)
  rx : (int, rx_window) Hashtbl.t;      (* src ip -> dedup window *)
}

let create ~node_id ~ip ~cores =
  if cores < 1 then invalid_arg "Node.create: cores must be >= 1";
  { node_id; ip; cores = Array.make cores 0; sites = [];
    tx_seq = Hashtbl.create 8; rx = Hashtbl.create 8 }

let node_id t = t.node_id
let ip t = t.ip
let add_site t s = t.sites <- s :: t.sites
let sites t = List.rev t.sites

let earliest_core t =
  let best = ref 0 in
  for i = 1 to Array.length t.cores - 1 do
    if t.cores.(i) < t.cores.(!best) then best := i
  done;
  (!best, t.cores.(!best))

let occupy t ~core ~until = t.cores.(core) <- max t.cores.(core) until

(* Migration support: a node arriving on a new shard carries core
   free-times from the old shard's virtual clock, which is not
   comparable with the new one — forget them so the first pump on the
   receiving shard does not stall behind a foreign timestamp. *)
let reset_cores t = Array.fill t.cores 0 (Array.length t.cores) 0

(* ------------------------------------------------------------------ *)
(* Transport endpoint.                                                 *)

let fresh_seq t ~dst_ip =
  let r =
    match Hashtbl.find_opt t.tx_seq dst_ip with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add t.tx_seq dst_ip r;
        r
  in
  let s = !r in
  incr r;
  s

let admit t ~src_ip ~seq =
  let w =
    match Hashtbl.find_opt t.rx src_ip with
    | Some w -> w
    | None ->
        let w = { floor = 0; seen = Hashtbl.create 8 } in
        Hashtbl.add t.rx src_ip w;
        w
  in
  if seq < w.floor || Hashtbl.mem w.seen seq then false
  else begin
    Hashtbl.add w.seen seq ();
    while Hashtbl.mem w.seen w.floor do
      Hashtbl.remove w.seen w.floor;
      w.floor <- w.floor + 1
    done;
    true
  end

let rx_floor t ~src_ip =
  match Hashtbl.find_opt t.rx src_ip with
  | Some w -> w.floor
  | None -> 0

let dedup_window_size t =
  Hashtbl.fold (fun _ w acc -> acc + Hashtbl.length w.seen) t.rx 0

module Stats = Tyco_support.Stats

type site_stats = {
  ss_name : string;
  ss_instructions : int;
  ss_threads : int;
  ss_comm_local : int;
  ss_packets_in : int;
  ss_packets_out : int;
  ss_fetches : int;
  ss_links : int;
  ss_thread_len_mean : float;
  ss_thread_len_p95 : float;
  ss_runq_depth_mean : float;
}

type breakdown = {
  b_queue_wait : Stats.Dist.summary option;
  b_wire : Stats.Dist.summary option;
  b_retransmit : Stats.Dist.summary option;
  b_execute : Stats.Dist.summary option;
  b_flush_wait : Stats.Dist.summary option;
}

(* Resident protocol state summed over sites, plus lifetime
   reclamation counters — the evidence that a run's memory tracked its
   working set (flat live counts, growing reclaimed counts).  The GC
   numbers are the host process's ([Gc.quick_stat]), meaningful for
   wall-clock runs. *)
type memory = {
  mem_chan_live : int;
  mem_chan_allocated : int;
  mem_class_live : int;
  mem_class_allocated : int;
  mem_done_reqs : int;
  mem_code_cache : int;
  mem_fetch_cache : int;
  mem_held_imports : int;
  mem_ids_reclaimed : int;
  mem_leases_expired : int;
  mem_lease_refreshes : int;
  mem_stale_refs : int;
  mem_done_pruned : int;
  mem_cache_evictions : int;
  mem_held_dropped : int;
  mem_gc_minor_words : float;
  mem_gc_major_words : float;
  mem_gc_heap_words : int;
}

type t = {
  virtual_ns : int;
  sim_events : int;
  packets : int;
  bytes : int;
  same_node_fast : int;
  frames_sent : int;
  batch_fill_mean : float;
  acks_piggybacked : int;
  outputs : (int * Output.event) list;
  sites : site_stats list;
  breakdown : breakdown;
  suspected_failures : (int * string) list;
  memory : memory;
}

let site_stats site =
  let s = Site.stats site in
  let c name = Stats.Counter.value (Stats.counter s name) in
  let d = Stats.dist s "thread_len" in
  let rq = Stats.dist s "runq_depth" in
  { ss_name = Site.name site;
    ss_instructions = c "instructions";
    ss_threads = c "threads";
    ss_comm_local = c "comm_local";
    ss_packets_in = c "packets_in";
    ss_packets_out = c "packets_out";
    ss_fetches = c "fetches";
    ss_links = c "links";
    ss_thread_len_mean = (if Stats.Dist.count d = 0 then 0. else Stats.Dist.mean d);
    ss_thread_len_p95 =
      (if Stats.Dist.count d = 0 then 0. else Stats.Dist.percentile d 0.95);
    ss_runq_depth_mean =
      (if Stats.Dist.count rq = 0 then 0. else Stats.Dist.mean rq) }

(* Pool one distribution across all sites (queue-wait, execute): a
   fresh Dist refilled from each site's retained samples.  The pool is
   an estimate past the reservoir cap, like its inputs. *)
let pooled name sites =
  let pool = Stats.Dist.create name in
  List.iter
    (fun site ->
      Array.iter
        (Stats.Dist.add pool)
        (Stats.Dist.samples (Stats.dist (Site.stats site) name)))
    sites;
  Stats.Dist.summary_opt pool

let memory_of_sites sites =
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 sites in
  let sumc name =
    sum (fun s -> Stats.Counter.value (Stats.counter (Site.stats s) name))
  in
  let m f = sum (fun s -> f (Site.memory s)) in
  let gc = Gc.quick_stat () in
  { mem_chan_live = m (fun x -> x.Site.m_chan_live);
    mem_chan_allocated = m (fun x -> x.Site.m_chan_allocated);
    mem_class_live = m (fun x -> x.Site.m_class_live);
    mem_class_allocated = m (fun x -> x.Site.m_class_allocated);
    mem_done_reqs = m (fun x -> x.Site.m_done_reqs);
    mem_code_cache = m (fun x -> x.Site.m_obj_cache + x.Site.m_grp_cache);
    mem_fetch_cache = m (fun x -> x.Site.m_fetch_cache);
    mem_held_imports = m (fun x -> x.Site.m_held);
    mem_ids_reclaimed = sumc "ids_reclaimed";
    mem_leases_expired = sumc "leases_expired";
    mem_lease_refreshes = sumc "lease_refreshes";
    mem_stale_refs = sumc "stale_refs";
    mem_done_pruned = sumc "done_reqs_pruned";
    mem_cache_evictions = sumc "code_cache_evictions";
    mem_held_dropped = sumc "held_imports_dropped";
    mem_gc_minor_words = gc.Gc.minor_words;
    mem_gc_major_words = gc.Gc.major_words;
    mem_gc_heap_words = gc.Gc.heap_words }

let of_cluster cluster =
  let sites = Cluster.sites cluster in
  let cstats = Cluster.stats cluster in
  { virtual_ns = Cluster.virtual_time cluster;
    sim_events = Tyco_net.Simnet.events_processed (Cluster.sim cluster);
    packets = Cluster.packets_sent cluster;
    bytes = Cluster.bytes_sent cluster;
    same_node_fast = Cluster.same_node_fast cluster;
    frames_sent = Cluster.frames_sent cluster;
    batch_fill_mean = Cluster.batch_fill_mean cluster;
    acks_piggybacked = Cluster.acks_piggybacked cluster;
    outputs = Cluster.outputs cluster;
    sites = List.map site_stats sites;
    breakdown =
      { b_queue_wait = pooled "queue_wait_ns" sites;
        b_wire = Stats.Dist.summary_opt (Stats.dist cstats "lat_wire");
        b_retransmit =
          Stats.Dist.summary_opt (Stats.dist cstats "lat_retransmit");
        b_execute = pooled "execute_ns" sites;
        b_flush_wait =
          Stats.Dist.summary_opt (Stats.dist cstats "lat_flush_wait") };
    suspected_failures = Cluster.suspected_failures cluster;
    memory = memory_of_sites sites }

let of_result (r : Api.result) = of_cluster r.Api.cluster

(* ------------------------------------------------------------------ *)
(* Minimal JSON emission.                                              *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ json_escape s ^ "\""

let jlist f xs = "[" ^ String.concat "," (List.map f xs) ^ "]"

let jfloat f =
  (* JSON has no NaN/inf; clamp to 0 like most emitters *)
  if Float.is_finite f then Printf.sprintf "%.2f" f else "0"

let output_value_json = function
  | Output.Oint n -> string_of_int n
  | Output.Obool b -> string_of_bool b
  | Output.Ostr s -> jstr s
  | Output.Ochan c -> jstr ("#" ^ c)

let output_json (ts, (e : Output.event)) =
  Printf.sprintf "{\"t\":%d,\"site\":%s,\"label\":%s,\"args\":%s}" ts
    (jstr e.Output.site) (jstr e.Output.label)
    (jlist output_value_json e.Output.args)

let site_json s =
  Printf.sprintf
    "{\"name\":%s,\"instructions\":%d,\"threads\":%d,\"comm_local\":%d,\
     \"packets_in\":%d,\"packets_out\":%d,\"fetches\":%d,\"links\":%d,\
     \"thread_len_mean\":%s,\"thread_len_p95\":%s,\"runq_depth_mean\":%s}"
    (jstr s.ss_name) s.ss_instructions s.ss_threads s.ss_comm_local
    s.ss_packets_in s.ss_packets_out s.ss_fetches s.ss_links
    (jfloat s.ss_thread_len_mean)
    (jfloat s.ss_thread_len_p95)
    (jfloat s.ss_runq_depth_mean)

(* An absent summary (no samples — e.g. an idle site) is [null], never
   [inf]: {!Stats.Dist.summary_opt} is the total-function path. *)
let summary_json = function
  | None -> "null"
  | Some (s : Stats.Dist.summary) ->
      Printf.sprintf
        "{\"n\":%d,\"mean\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p95\":%s,\
         \"p99\":%s,\"p999\":%s}"
        s.Stats.Dist.s_n (jfloat s.Stats.Dist.s_mean)
        (jfloat s.Stats.Dist.s_min) (jfloat s.Stats.Dist.s_max)
        (jfloat s.Stats.Dist.s_p50) (jfloat s.Stats.Dist.s_p95)
        (jfloat s.Stats.Dist.s_p99) (jfloat s.Stats.Dist.s_p999)

let breakdown_json b =
  Printf.sprintf
    "{\"queue_wait\":%s,\"wire\":%s,\"retransmit\":%s,\"execute\":%s,\
     \"flush_wait\":%s}"
    (summary_json b.b_queue_wait)
    (summary_json b.b_wire)
    (summary_json b.b_retransmit)
    (summary_json b.b_execute)
    (summary_json b.b_flush_wait)

let memory_json m =
  Printf.sprintf
    "{\"chan_live\":%d,\"chan_allocated\":%d,\"class_live\":%d,\
     \"class_allocated\":%d,\"done_reqs\":%d,\"code_cache\":%d,\
     \"fetch_cache\":%d,\"held_imports\":%d,\"ids_reclaimed\":%d,\
     \"leases_expired\":%d,\"lease_refreshes\":%d,\"stale_refs\":%d,\
     \"done_reqs_pruned\":%d,\"code_cache_evictions\":%d,\
     \"held_imports_dropped\":%d,\"gc_minor_words\":%s,\
     \"gc_major_words\":%s,\"gc_heap_words\":%d}"
    m.mem_chan_live m.mem_chan_allocated m.mem_class_live
    m.mem_class_allocated m.mem_done_reqs m.mem_code_cache m.mem_fetch_cache
    m.mem_held_imports m.mem_ids_reclaimed m.mem_leases_expired
    m.mem_lease_refreshes m.mem_stale_refs m.mem_done_pruned
    m.mem_cache_evictions m.mem_held_dropped
    (jfloat m.mem_gc_minor_words)
    (jfloat m.mem_gc_major_words)
    m.mem_gc_heap_words

(* The parallel runtime's merge target: shard-confined accumulators
   become one flat JSON object here, after every domain has joined —
   the explicit end-of-run merge the sharded engine is allowed. *)

let shard_stat_json (s : Par_runner.shard_stat) =
  Printf.sprintf
    "{\"shard\":%d,\"sites\":%d,\"events\":%d,\"virtual_ns\":%d,\
     \"packets\":%d,\"same_node_fast\":%d,\"handoffs_in\":%d,\
     \"ring_pushed\":%d,\"ring_popped\":%d,\"ring_hiwater\":%d,\
     \"parks\":%d,\"drains\":%d,\"weight\":%s}"
    s.Par_runner.ss_shard s.Par_runner.ss_sites s.Par_runner.ss_events
    s.Par_runner.ss_virtual_ns s.Par_runner.ss_packets
    s.Par_runner.ss_same_node s.Par_runner.ss_handoffs_in
    s.Par_runner.ss_ring_pushed s.Par_runner.ss_ring_popped
    s.Par_runner.ss_ring_hiwater s.Par_runner.ss_parks s.Par_runner.ss_drains
    (jfloat s.Par_runner.ss_weight)

let par_json (r : Par_runner.result) =
  let module Metrics = Tyco_support.Metrics in
  (* the parallel latency breakdown: site-side components pooled over
     every shard's sites, plus the cross-domain handoff latency the
     metrics registry records when [--metrics] is on *)
  let breakdown =
    Printf.sprintf
      "{\"queue_wait\":%s,\"execute\":%s,\"handoff\":%s}"
      (summary_json (pooled "queue_wait_ns" r.Par_runner.sites))
      (summary_json (pooled "execute_ns" r.Par_runner.sites))
      (summary_json
         (match
            List.find_opt
              (fun h -> Metrics.histogram_name h = "handoff_lat_ns")
              (Metrics.histograms r.Par_runner.metrics)
          with
         | Some h -> Stats.Dist.summary_opt (Metrics.histogram_dist h)
         | None -> None))
  in
  Printf.sprintf
    "{\"engine\":\"parallel\",\"domains\":%d,\"virtual_ns\":%d,\
     \"sim_events\":%d,\"packets\":%d,\"bytes\":%d,\"same_node_fast\":%d,\
     \"handoffs\":%d,\"ring_pushed\":%d,\"ring_popped\":%d,\
     \"ring_batch_fill_mean\":%s,\"parks\":%d,\
     \"instructions\":%d,\"wall_ns\":%d,\"dead_letters\":%d,\
     \"migrations\":%d,\"migration_ns\":%d,\"forwarded_envelopes\":%d,\
     \"sites_per_shard\":%s,\"placement_weights\":%s,\"node_weights\":%s,\
     \"clean\":%b,\"timed_out\":%b,\
     \"latency_breakdown\":%s,\"shards\":%s,\"outputs\":%s,\
     \"suspected_failures\":%s}"
    r.Par_runner.domains r.Par_runner.virtual_ns r.Par_runner.events
    r.Par_runner.packets r.Par_runner.bytes r.Par_runner.same_node_fast
    r.Par_runner.handoffs r.Par_runner.ring_pushed r.Par_runner.ring_popped
    (jfloat r.Par_runner.ring_batch_fill_mean)
    r.Par_runner.parks r.Par_runner.instructions r.Par_runner.wall_ns
    r.Par_runner.dead_letters r.Par_runner.migrations
    r.Par_runner.migration_ns r.Par_runner.forwarded_envelopes
    (jlist string_of_int (Array.to_list r.Par_runner.sites_per_shard))
    (jlist jfloat (Array.to_list r.Par_runner.placement_weights))
    (jlist jfloat (Array.to_list r.Par_runner.node_weights))
    r.Par_runner.clean r.Par_runner.timed_out breakdown
    (jlist shard_stat_json (Array.to_list r.Par_runner.shard_stats))
    (jlist output_json r.Par_runner.outputs)
    (jlist
       (fun (ts, name) -> Printf.sprintf "{\"t\":%d,\"site\":%s}" ts (jstr name))
       r.Par_runner.suspected)

let to_json t =
  Printf.sprintf
    "{\"virtual_ns\":%d,\"sim_events\":%d,\"packets\":%d,\"bytes\":%d,\
     \"same_node_fast\":%d,\"frames_sent\":%d,\"batch_fill_mean\":%s,\
     \"acks_piggybacked\":%d,\"outputs\":%s,\"sites\":%s,\
     \"latency_breakdown\":%s,\"suspected_failures\":%s,\"memory\":%s}"
    t.virtual_ns t.sim_events t.packets t.bytes t.same_node_fast
    t.frames_sent (jfloat t.batch_fill_mean) t.acks_piggybacked
    (jlist output_json t.outputs)
    (jlist site_json t.sites)
    (breakdown_json t.breakdown)
    (jlist
       (fun (ts, name) -> Printf.sprintf "{\"t\":%d,\"site\":%s}" ts (jstr name))
       t.suspected_failures)
    (memory_json t.memory)

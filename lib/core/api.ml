module Ast = Tyco_syntax.Ast
module Parser = Tyco_syntax.Parser
module Infer = Tyco_types.Infer
module Simnet = Tyco_net.Simnet

type error =
  | Parse_error of string
  | Type_error of string
  | Compile_error of string
  | Runtime_error of string

exception Error of error

let error_message = function
  | Parse_error m -> "parse error: " ^ m
  | Type_error m -> "type error: " ^ m
  | Compile_error m -> "compile error: " ^ m
  | Runtime_error m -> "runtime error: " ^ m

let parse ?file src =
  try Parser.parse_program ?file src
  with Parser.Error (msg, loc) ->
    raise
      (Error (Parse_error (Format.asprintf "%a: %s" Tyco_syntax.Loc.pp loc msg)))

let typecheck prog =
  try Infer.check_program prog
  with Infer.Error e ->
    raise (Error (Type_error (Format.asprintf "%a" Infer.pp_error e)))

let compile prog =
  try Tyco_compiler.Compile.compile_program prog
  with Tyco_compiler.Compile.Error m -> raise (Error (Compile_error m))

type result = {
  outputs : (int * Output.event) list;
  virtual_ns : int;
  sim_events : int;
  packets : int;
  bytes : int;
  cluster : Cluster.t;
}

(* Separate compilation: each site checked alone; descriptors feed
   the dynamic check at import resolution (paper §7). *)
let isolated_annotations prog =
  let infos =
    List.map
      (fun (sd : Ast.site_decl) ->
        let info =
          try Infer.check_site_isolated sd
          with Infer.Error e ->
            raise
              (Error
                 (Type_error
                    (Format.asprintf "site %s: %a" sd.Ast.s_name
                       Infer.pp_error e)))
        in
        ( sd.Ast.s_name,
          { Site.a_export_rtti =
              info.Infer.export_name_rtti @ info.Infer.export_class_rtti;
            a_import_expect =
              info.Infer.import_name_expect @ info.Infer.import_class_expect }
        ))
      (Tyco_syntax.Sugar.desugar_program prog).Ast.sites
  in
  fun name -> List.assoc_opt name infos

let load_isolated ?placement cluster prog =
  let annotations = isolated_annotations prog in
  let units = compile prog in
  try Cluster.load ?placement ~annotations cluster units
  with Invalid_argument m -> raise (Error (Runtime_error m))

let run_program ?config ?placement ?max_events ?until ?(inputs = [])
    ?(typecheck = true) ?(isolated = false) prog =
  let annotations =
    if isolated then isolated_annotations prog else fun _ -> None
  in
  if typecheck && not isolated then ignore (
    try Infer.check_program prog
    with Infer.Error e ->
      raise (Error (Type_error (Format.asprintf "%a" Infer.pp_error e))));
  let units = compile prog in
  let cluster = Cluster.create ?config () in
  let site_inputs name =
    Option.value ~default:[] (List.assoc_opt name inputs)
  in
  (try Cluster.load ?placement ~annotations ~inputs:site_inputs cluster units
   with Invalid_argument m -> raise (Error (Runtime_error m)));
  (try
     match until with
     | Some time -> Cluster.run_until cluster ~time
     | None -> Cluster.run ?max_events cluster
   with
  | Site.Protocol_error m -> raise (Error (Runtime_error m))
  | Tyco_vm.Machine.Error m -> raise (Error (Runtime_error m))
  | Failure m -> raise (Error (Runtime_error m)));
  { outputs = Cluster.outputs cluster;
    virtual_ns = Cluster.virtual_time cluster;
    sim_events = Simnet.events_processed (Cluster.sim cluster);
    packets = Cluster.packets_sent cluster;
    bytes = Cluster.bytes_sent cluster;
    cluster }

let run_source ?config ?placement ?max_events ?until src =
  run_program ?config ?placement ?max_events ?until (parse src)

(* The --domains dispatch: one or fewer domains means the deterministic
   single-domain scheduler, taken verbatim through [run_program] — the
   result is bit-identical to a plain run by construction (the test
   suite pins this), and it remains the only mode with timestamps
   deterministic enough for the differential tests.  More than one
   domain goes to the sharded engine. *)
let run_parallel ?config ?placement ?policy ?(inputs = []) ?max_events
    ?(typecheck = true) ?on_snapshot ?snapshot_every_ms ?rebalance
    ?force_migrations ~domains prog : Par_runner.result =
  if domains <= 1 then begin
    ignore policy (* one shard: every placement map is the identity *);
    ignore rebalance (* one shard: nowhere to migrate to *);
    ignore force_migrations;
    let t0 = Unix.gettimeofday () in
    let r =
      run_program ?config ?placement ?max_events ~inputs ~typecheck prog
    in
    let wall_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
    let c = r.cluster in
    let instructions =
      List.fold_left
        (fun acc s ->
          acc + Tyco_support.Stats.counter_value (Site.stats s) "instructions")
        0 (Cluster.sites c)
    in
    let node_weights =
      (* per-node instruction counts, same signal the sharded engine
         reports: lets a single-domain run seed --placement profile *)
      let nnodes =
        List.fold_left
          (fun acc s -> max acc (Site.ip s + 1))
          0 (Cluster.sites c)
      in
      let w = Array.make nnodes 0. in
      List.iter
        (fun s ->
          w.(Site.ip s) <-
            w.(Site.ip s)
            +. float_of_int
                 (Tyco_support.Stats.counter_value (Site.stats s)
                    "instructions"))
        (Cluster.sites c);
      w
    in
    { Par_runner.outputs = r.outputs;
      virtual_ns = r.virtual_ns;
      packets = r.packets;
      bytes = r.bytes;
      same_node_fast = Cluster.same_node_fast c;
      handoffs = 0;
      ring_pushed = 0;
      ring_popped = 0;
      ring_batch_fill_mean = 0.;
      parks = 0;
      domains = 1;
      instructions;
      wall_ns;
      dead_letters = Cluster.dead_letters c;
      migrations = 0;
      migration_ns = 0;
      forwarded_envelopes = 0;
      suspected = Cluster.suspected_failures c;
      sites_per_shard = [| List.length (Cluster.sites c) |];
      placement_weights = [| float_of_int (List.length (Cluster.sites c)) |];
      node_weights;
      events = r.sim_events;
      clean = true;
      timed_out = false;
      trace = Cluster.tracer c;
      metrics = Cluster.metrics c;
      shard_stats =
        [| { Par_runner.ss_shard = 0;
             ss_sites = List.length (Cluster.sites c);
             ss_events = r.sim_events;
             ss_virtual_ns = r.virtual_ns;
             ss_packets = r.packets;
             ss_same_node = Cluster.same_node_fast c;
             ss_handoffs_in = 0;
             ss_ring_pushed = 0;
             ss_ring_popped = 0;
             ss_ring_hiwater = 0;
             ss_parks = 0;
             ss_drains = 0;
             ss_weight = float_of_int (List.length (Cluster.sites c)) } |];
      sites = Cluster.sites c }
  end
  else begin
    if typecheck then
      ignore (
        try Infer.check_program prog
        with Infer.Error e ->
          raise (Error (Type_error (Format.asprintf "%a" Infer.pp_error e))));
    let units = compile prog in
    let site_inputs name =
      Option.value ~default:[] (List.assoc_opt name inputs)
    in
    try
      Par_runner.run ?config ?placement ?policy ~inputs:site_inputs
        ?max_events ?on_snapshot ?snapshot_every_ms ?rebalance
        ?force_migrations ~domains units
    with
    | Par_runner.Shard_failure (id, m) ->
        raise (Error (Runtime_error (Printf.sprintf "shard %d failed: %s" id m)))
    | Site.Protocol_error m -> raise (Error (Runtime_error m))
    | Tyco_vm.Machine.Error m -> raise (Error (Runtime_error m))
    | Invalid_argument m | Failure m -> raise (Error (Runtime_error m))
  end

let run_reference ?max_steps ?inputs prog =
  try Output.of_ref_outputs (Tyco_calculus.Interp.outputs ?max_steps ?inputs prog)
  with
  | Tyco_calculus.Network.Stuck m -> raise (Error (Runtime_error m))
  | Tyco_calculus.Interp.Error e ->
      raise (Error (Runtime_error e.Tyco_calculus.Interp.msg))

let agree_with_reference ?max_steps ?(inputs = []) prog =
  let vm_outs = List.map snd (run_program ~inputs prog).outputs in
  let ref_outs = run_reference ?max_steps ~inputs prog in
  Output.same_multiset vm_outs ref_outs

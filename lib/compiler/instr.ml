module Ast = Tyco_syntax.Ast

type t =
  | Push_int of int
  | Push_bool of bool
  | Push_str of string
  | Load of int
  | Store of int
  | Binop of Ast.binop
  | Unop of Ast.unop
  | Jump of int
  | Jump_if_false of int
  | New_chan of int
  | Trmsg of { label : string; lid : int; argc : int }
  | Trobj of int
  | Defgroup of int
  | Instof of int
  | Export_name of string
  | Export_class of string * int
  | Import_name of { site : string; name : string; cont : int; captures : int array }
  | Import_class of { site : string; name : string; cont : int; captures : int array }

let binop_name = function
  | Ast.Add -> "add" | Ast.Sub -> "sub" | Ast.Mul -> "mul" | Ast.Div -> "div"
  | Ast.Mod -> "mod" | Ast.Eq -> "eq" | Ast.Neq -> "neq" | Ast.Lt -> "lt"
  | Ast.Le -> "le" | Ast.Gt -> "gt" | Ast.Ge -> "ge" | Ast.And -> "and"
  | Ast.Or -> "or"

let pp_captures ppf caps =
  Format.fprintf ppf "[%s]"
    (String.concat "," (Array.to_list (Array.map string_of_int caps)))

let pp ppf = function
  | Push_int n -> Format.fprintf ppf "pushi %d" n
  | Push_bool b -> Format.fprintf ppf "pushb %b" b
  | Push_str s -> Format.fprintf ppf "pushs %S" s
  | Load i -> Format.fprintf ppf "load %d" i
  | Store i -> Format.fprintf ppf "store %d" i
  | Binop op -> Format.pp_print_string ppf (binop_name op)
  | Unop Ast.Neg -> Format.pp_print_string ppf "neg"
  | Unop Ast.Not -> Format.pp_print_string ppf "not"
  | Jump n -> Format.fprintf ppf "jmp %d" n
  | Jump_if_false n -> Format.fprintf ppf "jmpf %d" n
  | New_chan i -> Format.fprintf ppf "newc %d" i
  | Trmsg { label; argc; _ } -> Format.fprintf ppf "trmsg %s/%d" label argc
  | Trobj mt -> Format.fprintf ppf "trobj mt%d" mt
  | Defgroup g -> Format.fprintf ppf "defgroup g%d" g
  | Instof n -> Format.fprintf ppf "instof/%d" n
  | Export_name x -> Format.fprintf ppf "export %s" x
  | Export_class (x, slot) -> Format.fprintf ppf "exportc %s slot%d" x slot
  | Import_name { site; name; cont; captures } ->
      Format.fprintf ppf "import %s.%s cont=b%d caps=%a" site name cont
        pp_captures captures
  | Import_class { site; name; cont; captures } ->
      Format.fprintf ppf "importc %s.%s cont=b%d caps=%a" site name cont
        pp_captures captures

(* Rough per-instruction virtual-time costs, in nanoseconds of the
   simulated clock.  Scaled so that a communication reduction costs a
   few tens of units, matching the paper's granularity claim. *)
let cost = function
  | Push_int _ | Push_bool _ | Push_str _ | Load _ | Store _ -> 1
  | Binop _ | Unop _ -> 2
  | Jump _ | Jump_if_false _ -> 1
  | New_chan _ -> 6
  | Trmsg _ -> 12
  | Trobj _ -> 12
  | Defgroup _ -> 8
  | Instof _ -> 10
  | Export_name _ | Export_class _ -> 20
  | Import_name _ | Import_class _ -> 20

module Wire = Tyco_support.Wire
module Ast = Tyco_syntax.Ast

let binop_tag = function
  | Ast.Add -> 0 | Ast.Sub -> 1 | Ast.Mul -> 2 | Ast.Div -> 3 | Ast.Mod -> 4
  | Ast.Eq -> 5 | Ast.Neq -> 6 | Ast.Lt -> 7 | Ast.Le -> 8 | Ast.Gt -> 9
  | Ast.Ge -> 10 | Ast.And -> 11 | Ast.Or -> 12

let binop_of_tag = function
  | 0 -> Ast.Add | 1 -> Ast.Sub | 2 -> Ast.Mul | 3 -> Ast.Div | 4 -> Ast.Mod
  | 5 -> Ast.Eq | 6 -> Ast.Neq | 7 -> Ast.Lt | 8 -> Ast.Le | 9 -> Ast.Gt
  | 10 -> Ast.Ge | 11 -> Ast.And | 12 -> Ast.Or
  | n -> raise (Wire.Malformed (Printf.sprintf "binop tag %d" n))

let encode_captures enc caps =
  Wire.varint enc (Array.length caps);
  Array.iter (Wire.varint enc) caps

let decode_captures dec =
  let n = Wire.read_varint dec in
  Array.init n (fun _ -> Wire.read_varint dec)

let encode_instr enc (ins : Instr.t) =
  match ins with
  | Instr.Push_int n ->
      Wire.u8 enc 0;
      Wire.zint enc n
  | Instr.Push_bool b ->
      Wire.u8 enc 1;
      Wire.bool enc b
  | Instr.Push_str s ->
      Wire.u8 enc 2;
      Wire.string enc s
  | Instr.Load i ->
      Wire.u8 enc 3;
      Wire.varint enc i
  | Instr.Store i ->
      Wire.u8 enc 4;
      Wire.varint enc i
  | Instr.Binop op ->
      Wire.u8 enc 5;
      Wire.u8 enc (binop_tag op)
  | Instr.Unop Ast.Neg -> Wire.u8 enc 6
  | Instr.Unop Ast.Not -> Wire.u8 enc 7
  | Instr.Jump n ->
      Wire.u8 enc 8;
      Wire.varint enc n
  | Instr.Jump_if_false n ->
      Wire.u8 enc 9;
      Wire.varint enc n
  | Instr.New_chan i ->
      Wire.u8 enc 10;
      Wire.varint enc i
  | Instr.Trmsg { label; argc; _ } ->
      (* [lid] is area-local, reassigned by the receiver's linker. *)
      Wire.u8 enc 11;
      Wire.string enc label;
      Wire.varint enc argc
  | Instr.Trobj mt ->
      Wire.u8 enc 12;
      Wire.varint enc mt
  | Instr.Defgroup g ->
      Wire.u8 enc 13;
      Wire.varint enc g
  | Instr.Instof n ->
      Wire.u8 enc 14;
      Wire.varint enc n
  | Instr.Export_name x ->
      Wire.u8 enc 15;
      Wire.string enc x
  | Instr.Export_class (x, slot) ->
      Wire.u8 enc 16;
      Wire.string enc x;
      Wire.varint enc slot
  | Instr.Import_name { site; name; cont; captures } ->
      Wire.u8 enc 17;
      Wire.string enc site;
      Wire.string enc name;
      Wire.varint enc cont;
      encode_captures enc captures
  | Instr.Import_class { site; name; cont; captures } ->
      Wire.u8 enc 18;
      Wire.string enc site;
      Wire.string enc name;
      Wire.varint enc cont;
      encode_captures enc captures

let decode_instr dec : Instr.t =
  match Wire.read_u8 dec with
  | 0 -> Instr.Push_int (Wire.read_zint dec)
  | 1 -> Instr.Push_bool (Wire.read_bool dec)
  | 2 -> Instr.Push_str (Wire.read_string dec)
  | 3 -> Instr.Load (Wire.read_varint dec)
  | 4 -> Instr.Store (Wire.read_varint dec)
  | 5 -> Instr.Binop (binop_of_tag (Wire.read_u8 dec))
  | 6 -> Instr.Unop Ast.Neg
  | 7 -> Instr.Unop Ast.Not
  | 8 -> Instr.Jump (Wire.read_varint dec)
  | 9 -> Instr.Jump_if_false (Wire.read_varint dec)
  | 10 -> Instr.New_chan (Wire.read_varint dec)
  | 11 ->
      let l = Wire.read_string dec in
      let n = Wire.read_varint dec in
      Instr.Trmsg { label = l; lid = -1; argc = n }
  | 12 -> Instr.Trobj (Wire.read_varint dec)
  | 13 -> Instr.Defgroup (Wire.read_varint dec)
  | 14 -> Instr.Instof (Wire.read_varint dec)
  | 15 -> Instr.Export_name (Wire.read_string dec)
  | 16 ->
      let x = Wire.read_string dec in
      let slot = Wire.read_varint dec in
      Instr.Export_class (x, slot)
  | 17 ->
      let site = Wire.read_string dec in
      let name = Wire.read_string dec in
      let cont = Wire.read_varint dec in
      let captures = decode_captures dec in
      Instr.Import_name { site; name; cont; captures }
  | 18 ->
      let site = Wire.read_string dec in
      let name = Wire.read_string dec in
      let cont = Wire.read_varint dec in
      let captures = decode_captures dec in
      Instr.Import_class { site; name; cont; captures }
  | n -> raise (Wire.Malformed (Printf.sprintf "instr tag %d" n))

let encode_unit enc (u : Block.unit_) =
  Wire.varint enc (Array.length u.blocks);
  Array.iter
    (fun (b : Block.block) ->
      Wire.string enc b.blk_name;
      Wire.varint enc b.blk_nparams;
      Wire.varint enc b.blk_nslots;
      Wire.varint enc (Array.length b.blk_code);
      Array.iter (encode_instr enc) b.blk_code)
    u.blocks;
  Wire.varint enc (Array.length u.mtables);
  Array.iter
    (fun (mt : Block.mtable) ->
      encode_captures enc mt.mt_captures;
      Wire.varint enc (Array.length mt.mt_entries);
      Array.iter
        (fun (e : Block.mentry) ->
          Wire.string enc e.me_label;
          Wire.varint enc e.me_block;
          Wire.varint enc e.me_nparams)
        mt.mt_entries)
    u.mtables;
  Wire.varint enc (Array.length u.groups);
  Array.iter
    (fun (g : Block.group) ->
      encode_captures enc g.grp_captures;
      Wire.varint enc (Array.length g.grp_classes);
      Array.iter
        (fun (c : Block.class_sig) ->
          Wire.string enc c.cls_name;
          Wire.varint enc c.cls_block;
          Wire.varint enc c.cls_nparams)
        g.grp_classes;
      encode_captures enc g.grp_slots)
    u.groups;
  Wire.varint enc u.entry

let decode_unit dec : Block.unit_ =
  let nblocks = Wire.read_varint dec in
  let blocks =
    Array.init nblocks (fun blk_id ->
        let blk_name = Wire.read_string dec in
        let blk_nparams = Wire.read_varint dec in
        let blk_nslots = Wire.read_varint dec in
        let ninstrs = Wire.read_varint dec in
        let blk_code = Array.init ninstrs (fun _ -> decode_instr dec) in
        { Block.blk_id; blk_name; blk_nparams; blk_nslots; blk_code })
  in
  let nmts = Wire.read_varint dec in
  let mtables =
    Array.init nmts (fun mt_id ->
        let mt_captures = decode_captures dec in
        let n = Wire.read_varint dec in
        let mt_entries =
          Array.init n (fun _ ->
              let me_label = Wire.read_string dec in
              let me_block = Wire.read_varint dec in
              let me_nparams = Wire.read_varint dec in
              { Block.me_label; me_block; me_nparams })
        in
        { Block.mt_id; mt_captures; mt_entries })
  in
  let ngroups = Wire.read_varint dec in
  let groups =
    Array.init ngroups (fun grp_id ->
        let grp_captures = decode_captures dec in
        let n = Wire.read_varint dec in
        let grp_classes =
          Array.init n (fun _ ->
              let cls_name = Wire.read_string dec in
              let cls_block = Wire.read_varint dec in
              let cls_nparams = Wire.read_varint dec in
              { Block.cls_name; cls_block; cls_nparams })
        in
        let grp_slots = decode_captures dec in
        { Block.grp_id; grp_captures; grp_classes; grp_slots })
  in
  let entry = Wire.read_varint dec in
  let u = { Block.blocks; mtables; groups; entry } in
  (* Dynamic checking of incoming code: every cross-reference must be
     in range (paper §7's protocol-error detection). *)
  let check_block i =
    if i < 0 || i >= nblocks then
      raise (Wire.Malformed (Printf.sprintf "block reference b%d out of range" i))
  in
  if nblocks = 0 then raise (Wire.Malformed "unit with no blocks");
  check_block entry;
  Array.iter
    (fun (b : Block.block) ->
      Array.iter
        (function
          | Instr.Trobj mt ->
              if mt < 0 || mt >= nmts then
                raise (Wire.Malformed "mtable reference out of range")
          | Instr.Defgroup g ->
              if g < 0 || g >= ngroups then
                raise (Wire.Malformed "group reference out of range")
          | Instr.Import_name { cont; _ } | Instr.Import_class { cont; _ } ->
              check_block cont
          | _ -> ())
        b.blk_code)
    blocks;
  Array.iter
    (fun (mt : Block.mtable) ->
      Array.iter (fun (e : Block.mentry) -> check_block e.me_block) mt.mt_entries)
    mtables;
  Array.iter
    (fun (g : Block.group) ->
      Array.iter
        (fun (c : Block.class_sig) -> check_block c.cls_block)
        g.grp_classes)
    groups;
  u

let unit_to_string u =
  let enc = Wire.encoder () in
  encode_unit enc u;
  Wire.to_string enc

let unit_of_string s = decode_unit (Wire.decoder s)
let byte_size u = String.length (unit_to_string u)

(* ------------------------------------------------------------------ *)
(* Sub-unit extraction for mobility.                                   *)

let remap_instr ~blk_map ~mt_map ~grp_map (ins : Instr.t) : Instr.t =
  match ins with
  | Instr.Trobj mt -> Instr.Trobj (mt_map mt)
  | Instr.Defgroup g -> Instr.Defgroup (grp_map g)
  | Instr.Import_name r -> Instr.Import_name { r with cont = blk_map r.cont }
  | Instr.Import_class r -> Instr.Import_class { r with cont = blk_map r.cont }
  | _ -> ins

let extract (u : Block.unit_) (sub : Block.subset) =
  let index xs = List.mapi (fun i x -> (x, i)) xs in
  let bmap = index sub.sub_blocks in
  let mmap = index sub.sub_mtables in
  let gmap = index sub.sub_groups in
  let blk_map i = List.assoc i bmap in
  let mt_map i = List.assoc i mmap in
  let grp_map i = List.assoc i gmap in
  let blocks =
    Array.of_list
      (List.mapi
         (fun new_id old_id ->
           let b = u.blocks.(old_id) in
           { b with
             Block.blk_id = new_id;
             blk_code =
               Array.map (remap_instr ~blk_map ~mt_map ~grp_map) b.blk_code })
         sub.sub_blocks)
  in
  let mtables =
    Array.of_list
      (List.mapi
         (fun new_id old_id ->
           let mt = u.mtables.(old_id) in
           { mt with
             Block.mt_id = new_id;
             mt_entries =
               Array.map
                 (fun (e : Block.mentry) ->
                   { e with Block.me_block = blk_map e.me_block })
                 mt.mt_entries })
         sub.sub_mtables)
  in
  let groups =
    Array.of_list
      (List.mapi
         (fun new_id old_id ->
           let g = u.groups.(old_id) in
           { g with
             Block.grp_id = new_id;
             grp_classes =
               Array.map
                 (fun (c : Block.class_sig) ->
                   { c with Block.cls_block = blk_map c.cls_block })
                 g.grp_classes })
         sub.sub_groups)
  in
  ({ Block.blocks; mtables; groups; entry = 0 }, blk_map, mt_map, grp_map)

let extract_mtable u mt =
  let sub = Block.closure_of_mtable u mt in
  let sub_unit, _, mt_map, _ = extract u sub in
  (sub_unit, mt_map mt)

let extract_group u g =
  let sub = Block.closure_of_group u g in
  let sub_unit, _, _, grp_map = extract u sub in
  (sub_unit, grp_map g)

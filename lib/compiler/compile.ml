module Ast = Tyco_syntax.Ast
module Loc = Tyco_syntax.Loc
module Vec = Tyco_support.Vec

exception Error of string

let fail fmt = Format.kasprintf (fun m -> raise (Error m)) fmt

module SMap = Map.Make (String)

type env = { names : int SMap.t; classes : int SMap.t }

type builder = {
  name : string;
  nparams : int;
  mutable nslots : int;
  mutable code : Instr.t list; (* reversed *)
  mutable len : int;
}

type state = {
  blocks : Block.block option Vec.t;
  mtables : Block.mtable Vec.t;
  groups : Block.group Vec.t;
}

let new_builder name nparams =
  { name; nparams; nslots = nparams; code = []; len = 0 }

let emit b ins =
  b.code <- ins :: b.code;
  b.len <- b.len + 1

let alloc_slot b =
  let s = b.nslots in
  b.nslots <- s + 1;
  s

let reserve_block st =
  Vec.push st.blocks None

let finish_block st id b =
  let blk =
    { Block.blk_id = id;
      blk_name = b.name;
      blk_nparams = b.nparams;
      blk_nslots = b.nslots;
      blk_code = Array.of_list (List.rev b.code) }
  in
  Vec.set st.blocks id (Some blk)

let lookup_name env x =
  match SMap.find_opt x env.names with
  | Some s -> s
  | None -> fail "unbound name '%s' (compile)" x

let lookup_class env x =
  match SMap.find_opt x env.classes with
  | Some s -> s
  | None -> fail "unbound class '%s' (compile)" x

(* Captured identifiers of a set of bodies: the free names and free
   classes, minus the binders, in deterministic first-occurrence
   order. *)
let captured_of_bodies bodies params group_names =
  let dedup xs =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun x ->
        if Hashtbl.mem seen x then false
        else begin
          Hashtbl.add seen x ();
          true
        end)
      xs
  in
  let names =
    dedup
      (List.concat_map
         (fun (body, ps) ->
           List.filter (fun x -> not (List.mem x ps)) (Ast.free_names body))
         (List.combine bodies params))
  in
  let classes =
    dedup
      (List.concat_map
         (fun body ->
           List.filter
             (fun x -> not (List.mem x group_names))
             (Ast.free_classes body))
         bodies)
  in
  (names, classes)

let rec compile_expr st b env (e : Ast.expr) =
  match e.Loc.it with
  | Ast.Evar x -> emit b (Instr.Load (lookup_name env x))
  | Ast.Eint n -> emit b (Instr.Push_int n)
  | Ast.Ebool v -> emit b (Instr.Push_bool v)
  | Ast.Estr s -> emit b (Instr.Push_str s)
  | Ast.Ebin (op, x, y) ->
      compile_expr st b env x;
      compile_expr st b env y;
      emit b (Instr.Binop op)
  | Ast.Eun (op, x) ->
      compile_expr st b env x;
      emit b (Instr.Unop op)

(* Compile the shared pieces of an object: returns the method table id.
   The closure environment is [captured names..][captured classes..]. *)
and compile_methods st env (ms : Ast.method_ list) =
  let bodies = List.map (fun (m : Ast.method_) -> m.m_body) ms in
  let params = List.map (fun (m : Ast.method_) -> m.m_params) ms in
  let cap_names, cap_classes = captured_of_bodies bodies params [] in
  let captures =
    Array.of_list
      (List.map (lookup_name env) cap_names
      @ List.map (lookup_class env) cap_classes)
  in
  let entries =
    List.map
      (fun (m : Ast.method_) ->
        let bid = reserve_block st in
        let nparams = List.length m.m_params in
        let mb = new_builder (Printf.sprintf "method:%s" m.m_label) nparams in
        (* params .. captured names .. captured classes *)
        mb.nslots <- nparams + Array.length captures;
        let menv =
          let names =
            List.fold_left
              (fun (i, acc) x -> (i + 1, SMap.add x i acc))
              (0, SMap.empty) m.m_params
            |> snd
          in
          let names, i =
            List.fold_left
              (fun (acc, i) x -> (SMap.add x i acc, i + 1))
              (names, nparams) cap_names
          in
          let classes, _ =
            List.fold_left
              (fun (acc, i) x -> (SMap.add x i acc, i + 1))
              (SMap.empty, i) cap_classes
          in
          { names; classes }
        in
        compile st mb menv m.m_body;
        finish_block st bid mb;
        { Block.me_label = m.m_label; me_block = bid; me_nparams = nparams })
      ms
  in
  let mt_id = Vec.length st.mtables in
  ignore
    (Vec.push st.mtables
       { Block.mt_id; mt_captures = captures; mt_entries = Array.of_list entries });
  mt_id

(* Compile a definition group; returns (group id, class name -> creating
   frame slot).  Class body frame: [params..][captured names..]
   [captured classes..][group class values..]. *)
and compile_group st b env (ds : Ast.defn list) =
  let group_names = List.map (fun (d : Ast.defn) -> d.d_name) ds in
  let bodies = List.map (fun (d : Ast.defn) -> d.d_body) ds in
  let params = List.map (fun (d : Ast.defn) -> d.d_params) ds in
  let cap_names, cap_classes = captured_of_bodies bodies params group_names in
  let captures =
    Array.of_list
      (List.map (lookup_name env) cap_names
      @ List.map (lookup_class env) cap_classes)
  in
  let ncap = Array.length captures in
  let classes =
    List.map
      (fun (d : Ast.defn) ->
        let bid = reserve_block st in
        let nparams = List.length d.d_params in
        let cb = new_builder (Printf.sprintf "class:%s" d.d_name) nparams in
        cb.nslots <- nparams + ncap + List.length group_names;
        let cenv =
          let names =
            List.fold_left
              (fun (i, acc) x -> (i + 1, SMap.add x i acc))
              (0, SMap.empty) d.d_params
            |> snd
          in
          let names, i =
            List.fold_left
              (fun (acc, i) x -> (SMap.add x i acc, i + 1))
              (names, nparams) cap_names
          in
          let cls, i =
            List.fold_left
              (fun (acc, i) x -> (SMap.add x i acc, i + 1))
              (SMap.empty, i) cap_classes
          in
          let cls, _ =
            List.fold_left
              (fun (acc, i) x -> (SMap.add x i acc, i + 1))
              (cls, i) group_names
          in
          { names; classes = cls }
        in
        compile st cb cenv d.d_body;
        finish_block st bid cb;
        { Block.cls_name = d.d_name;
          cls_block = bid;
          cls_nparams = nparams })
      ds
  in
  let slots = List.map (fun _ -> alloc_slot b) ds in
  let grp_id = Vec.length st.groups in
  ignore
    (Vec.push st.groups
       { Block.grp_id;
         grp_captures = captures;
         grp_classes = Array.of_list classes;
         grp_slots = Array.of_list slots });
  emit b (Instr.Defgroup grp_id);
  (grp_id, List.combine group_names slots)

and compile st b env (p : Ast.proc) : unit =
  match p.Loc.it with
  | Ast.Pnil -> ()
  | Ast.Ppar (x, y) ->
      compile st b env x;
      compile st b env y
  | Ast.Pnew (xs, q) ->
      let env =
        List.fold_left
          (fun env x ->
            let s = alloc_slot b in
            emit b (Instr.New_chan s);
            { env with names = SMap.add x s env.names })
          env xs
      in
      compile st b env q
  | Ast.Pmsg (x, l, es) ->
      List.iter (compile_expr st b env) es;
      emit b (Instr.Load (lookup_name env x));
      emit b (Instr.Trmsg { label = l; lid = -1; argc = List.length es })
  | Ast.Pobj (x, ms) ->
      let mt = compile_methods st env ms in
      emit b (Instr.Load (lookup_name env x));
      emit b (Instr.Trobj mt)
  | Ast.Pinst (xc, es) ->
      List.iter (compile_expr st b env) es;
      emit b (Instr.Load (lookup_class env xc));
      emit b (Instr.Instof (List.length es))
  | Ast.Pdef (ds, q) ->
      let _gid, slots = compile_group st b env ds in
      let env =
        List.fold_left
          (fun env (x, s) -> { env with classes = SMap.add x s env.classes })
          env slots
      in
      compile st b env q
  | Ast.Pif (e, x, y) ->
      compile_expr st b env e;
      let jf_at = b.len in
      emit b (Instr.Jump_if_false 0);
      compile st b env x;
      let j_at = b.len in
      emit b (Instr.Jump 0);
      let else_target = b.len in
      compile st b env y;
      let end_target = b.len in
      (* patch: code list is reversed; rebuild via array at finish is
         simpler, so patch by index from the end *)
      patch b jf_at (Instr.Jump_if_false else_target);
      patch b j_at (Instr.Jump end_target)
  | Ast.Plet _ -> fail "internal: 'let' must be desugared before compiling"
  | Ast.Pexport_new (xs, q) ->
      let env =
        List.fold_left
          (fun env x ->
            let s = alloc_slot b in
            emit b (Instr.New_chan s);
            emit b (Instr.Load s);
            emit b (Instr.Export_name x);
            { env with names = SMap.add x s env.names })
          env xs
      in
      compile st b env q
  | Ast.Pexport_def (ds, q) ->
      let _gid, slots = compile_group st b env ds in
      List.iter (fun (x, s) -> emit b (Instr.Export_class (x, s))) slots;
      let env =
        List.fold_left
          (fun env (x, s) -> { env with classes = SMap.add x s env.classes })
          env slots
      in
      compile st b env q
  | Ast.Pimport_name (x, site, q) ->
      compile_import st b env ~is_class:false ~binder:x ~site q
  | Ast.Pimport_class (x, site, q) ->
      compile_import st b env ~is_class:true ~binder:x ~site q

(* The continuation of an import runs as a fresh thread when the name
   service reply arrives: block layout [imported value][captured..]. *)
and compile_import st b env ~is_class ~binder ~site q =
  let cap_names =
    List.filter (fun y -> is_class || y <> binder) (Ast.free_names q)
  in
  let cap_classes =
    List.filter (fun y -> (not is_class) || y <> binder) (Ast.free_classes q)
  in
  List.iter
    (fun y ->
      if not (SMap.mem y env.names) then
        fail "unbound name '%s' (compile, import continuation)" y)
    cap_names;
  List.iter
    (fun y ->
      if not (SMap.mem y env.classes) then
        fail "unbound class '%s' (compile, import continuation)" y)
    cap_classes;
  let captures =
    Array.of_list
      (List.map (lookup_name env) cap_names
      @ List.map (lookup_class env) cap_classes)
  in
  let bid = reserve_block st in
  let cb = new_builder (Printf.sprintf "import:%s.%s" site binder) 1 in
  cb.nslots <- 1 + Array.length captures;
  let cenv =
    let base_names = if is_class then SMap.empty else SMap.singleton binder 0 in
    let base_classes = if is_class then SMap.singleton binder 0 else SMap.empty in
    let names, i =
      List.fold_left
        (fun (acc, i) y -> (SMap.add y i acc, i + 1))
        (base_names, 1) cap_names
    in
    let classes, _ =
      List.fold_left
        (fun (acc, i) y -> (SMap.add y i acc, i + 1))
        (base_classes, i) cap_classes
    in
    { names; classes }
  in
  compile st cb cenv q;
  finish_block st bid cb;
  if is_class then
    emit b (Instr.Import_class { site; name = binder; cont = bid; captures })
  else emit b (Instr.Import_name { site; name = binder; cont = bid; captures })

and patch b idx ins =
  (* b.code is reversed: element at emission index i lives at position
     (len - 1 - i) from the head *)
  let pos = b.len - 1 - idx in
  b.code <- List.mapi (fun i x -> if i = pos then ins else x) b.code

let compile_proc ?(optimize = true) (p : Ast.proc) : Block.unit_ =
  let p = Tyco_syntax.Sugar.desugar p in
  let st = { blocks = Vec.create (); mtables = Vec.create (); groups = Vec.create () } in
  let entry = reserve_block st in
  let b = new_builder "entry" 1 in
  let env = { names = SMap.singleton "io" 0; classes = SMap.empty } in
  compile st b env p;
  finish_block st entry b;
  { Block.blocks =
      Array.of_list
        (List.map
           (function Some blk -> blk | None -> assert false)
           (Vec.to_list st.blocks));
    mtables = Array.of_list (Vec.to_list st.mtables);
    groups = Array.of_list (Vec.to_list st.groups);
    entry }
  |> fun u -> if optimize then Peephole.unit_ u else u

let compile_program ?optimize (prog : Ast.program) =
  List.map
    (fun (s : Ast.site_decl) -> (s.s_name, compile_proc ?optimize s.s_proc))
    prog.sites

module Vec = Tyco_support.Vec

type area = {
  blocks : Block.block Vec.t;
  costs : int array Vec.t;
      (* parallel to [blocks]: per-pc Instr.cost, precomputed so the VM
         stepping loop never re-dispatches on the instruction *)
  mtables : Block.mtable Vec.t;
  dispatch : int array Vec.t;
      (* parallel to [mtables]: direct-mapped label id -> entry index
         (-1 = no such method).  Sized to the label count at link time;
         ids interned later cannot occur in an earlier table, so lookups
         bounds-check and treat overflow as -1. *)
  groups : Block.group Vec.t;
  labels : string Vec.t;                 (* label id -> label *)
  label_ids : (string, int) Hashtbl.t;   (* label -> label id *)
  mutable instrs : int;
  mutable snap : Block.unit_ option;  (* cache, cleared by link *)
}

type offsets = { blk_off : int; mt_off : int; grp_off : int }

let create () =
  { blocks = Vec.create (); costs = Vec.create (); mtables = Vec.create ();
    dispatch = Vec.create (); groups = Vec.create (); labels = Vec.create ();
    label_ids = Hashtbl.create 16; instrs = 0; snap = None }

let intern area label =
  match Hashtbl.find_opt area.label_ids label with
  | Some id -> id
  | None ->
      let id = Vec.push area.labels label in
      Hashtbl.add area.label_ids label id;
      id

let label_name area lid = Vec.get area.labels lid
let n_labels area = Vec.length area.labels

let shift_instr area (o : offsets) (ins : Instr.t) : Instr.t =
  match ins with
  | Instr.Trmsg r -> Instr.Trmsg { r with lid = intern area r.label }
  | Instr.Trobj mt -> Instr.Trobj (mt + o.mt_off)
  | Instr.Defgroup g -> Instr.Defgroup (g + o.grp_off)
  | Instr.Import_name r -> Instr.Import_name { r with cont = r.cont + o.blk_off }
  | Instr.Import_class r ->
      Instr.Import_class { r with cont = r.cont + o.blk_off }
  | _ -> ins

let build_dispatch area (entries : Block.mentry array) =
  let ids = Array.map (fun (e : Block.mentry) -> intern area e.me_label) entries in
  let d = Array.make (Vec.length area.labels) (-1) in
  (* first entry wins on duplicate labels, matching the former scan *)
  Array.iteri (fun i lid -> if d.(lid) < 0 then d.(lid) <- i) ids;
  d

let link area (u : Block.unit_) : offsets =
  area.snap <- None;
  let o =
    { blk_off = Vec.length area.blocks;
      mt_off = Vec.length area.mtables;
      grp_off = Vec.length area.groups }
  in
  Array.iter
    (fun (b : Block.block) ->
      area.instrs <- area.instrs + Array.length b.blk_code;
      let code = Array.map (shift_instr area o) b.blk_code in
      ignore
        (Vec.push area.blocks
           { b with Block.blk_id = b.blk_id + o.blk_off; blk_code = code });
      ignore (Vec.push area.costs (Array.map Instr.cost code)))
    u.blocks;
  Array.iter
    (fun (mt : Block.mtable) ->
      let entries =
        Array.map
          (fun (e : Block.mentry) ->
            { e with Block.me_block = e.me_block + o.blk_off })
          mt.mt_entries
      in
      ignore
        (Vec.push area.mtables
           { mt with Block.mt_id = mt.mt_id + o.mt_off; mt_entries = entries });
      ignore (Vec.push area.dispatch (build_dispatch area mt.mt_entries)))
    u.mtables;
  Array.iter
    (fun (g : Block.group) ->
      ignore
        (Vec.push area.groups
           { g with
             Block.grp_id = g.grp_id + o.grp_off;
             grp_classes =
               Array.map
                 (fun (c : Block.class_sig) ->
                   { c with Block.cls_block = c.cls_block + o.blk_off })
                 g.grp_classes }))
    u.groups;
  o

let of_unit u =
  let area = create () in
  let o = link area u in
  (area, u.Block.entry + o.blk_off)

let block area i = Vec.get area.blocks i
let costs area i = Vec.get area.costs i
let mtable area i = Vec.get area.mtables i
let group area i = Vec.get area.groups i
let n_blocks area = Vec.length area.blocks
let n_instrs area = area.instrs

let method_entry area mt ~lid =
  let d = Vec.get area.dispatch mt in
  if lid >= 0 && lid < Array.length d then d.(lid) else -1

let snapshot area =
  match area.snap with
  | Some u -> u
  | None ->
      let u =
        { Block.blocks = Array.of_list (Vec.to_list area.blocks);
          mtables = Array.of_list (Vec.to_list area.mtables);
          groups = Array.of_list (Vec.to_list area.groups);
          entry = 0 }
      in
      area.snap <- Some u;
      u

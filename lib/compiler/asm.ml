module Ast = Tyco_syntax.Ast

exception Error of string

let err fmt = Format.kasprintf (fun m -> raise (Error m)) fmt

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)

let binop_mnemonic = function
  | Ast.Add -> "add" | Ast.Sub -> "sub" | Ast.Mul -> "mul" | Ast.Div -> "div"
  | Ast.Mod -> "mod" | Ast.Eq -> "eq" | Ast.Neq -> "neq" | Ast.Lt -> "lt"
  | Ast.Le -> "le" | Ast.Gt -> "gt" | Ast.Ge -> "ge" | Ast.And -> "and"
  | Ast.Or -> "or"

let caps_string caps =
  "[" ^ String.concat "," (List.map string_of_int (Array.to_list caps)) ^ "]"

let pp_instr ppf (ins : Instr.t) =
  match ins with
  | Instr.Push_int n -> Format.fprintf ppf "pushi %d" n
  | Instr.Push_bool b -> Format.fprintf ppf "pushb %b" b
  | Instr.Push_str s -> Format.fprintf ppf "pushs %S" s
  | Instr.Load i -> Format.fprintf ppf "load %d" i
  | Instr.Store i -> Format.fprintf ppf "store %d" i
  | Instr.Binop op -> Format.pp_print_string ppf (binop_mnemonic op)
  | Instr.Unop Ast.Neg -> Format.pp_print_string ppf "neg"
  | Instr.Unop Ast.Not -> Format.pp_print_string ppf "not"
  | Instr.Jump n -> Format.fprintf ppf "jmp %d" n
  | Instr.Jump_if_false n -> Format.fprintf ppf "jmpf %d" n
  | Instr.New_chan i -> Format.fprintf ppf "newc %d" i
  | Instr.Trmsg { label; argc; _ } -> Format.fprintf ppf "trmsg %s/%d" label argc
  | Instr.Trobj mt -> Format.fprintf ppf "trobj mt%d" mt
  | Instr.Defgroup g -> Format.fprintf ppf "defgroup g%d" g
  | Instr.Instof n -> Format.fprintf ppf "instof %d" n
  | Instr.Export_name x -> Format.fprintf ppf "export %s" x
  | Instr.Export_class (x, slot) -> Format.fprintf ppf "exportc %s %d" x slot
  | Instr.Import_name { site; name; cont; captures } ->
      Format.fprintf ppf "import %s.%s b%d %s" site name cont
        (caps_string captures)
  | Instr.Import_class { site; name; cont; captures } ->
      Format.fprintf ppf "importc %s.%s b%d %s" site name cont
        (caps_string captures)

let pp ppf (u : Block.unit_) =
  Format.fprintf ppf "unit entry=b%d@." u.entry;
  Array.iter
    (fun (b : Block.block) ->
      Format.fprintf ppf "block b%d %S params=%d slots=%d {@." b.blk_id
        b.blk_name b.blk_nparams b.blk_nslots;
      Array.iter (fun ins -> Format.fprintf ppf "  %a@." pp_instr ins) b.blk_code;
      Format.fprintf ppf "}@.")
    u.blocks;
  Array.iter
    (fun (mt : Block.mtable) ->
      Format.fprintf ppf "mtable mt%d caps=%s {@." mt.mt_id
        (caps_string mt.mt_captures);
      Array.iter
        (fun (e : Block.mentry) ->
          Format.fprintf ppf "  %s -> b%d/%d@." e.me_label e.me_block
            e.me_nparams)
        mt.mt_entries;
      Format.fprintf ppf "}@.")
    u.mtables;
  Array.iter
    (fun (g : Block.group) ->
      Format.fprintf ppf "group g%d caps=%s slots=%s {@." g.grp_id
        (caps_string g.grp_captures)
        (caps_string g.grp_slots);
      Array.iter
        (fun (c : Block.class_sig) ->
          Format.fprintf ppf "  %s -> b%d/%d@." c.cls_name c.cls_block
            c.cls_nparams)
        g.grp_classes;
      Format.fprintf ppf "}@.")
    u.groups

let print u = Format.asprintf "%a" pp u

(* ------------------------------------------------------------------ *)
(* Parsing.                                                            *)

(* tokenize a line into words, keeping OCaml-quoted strings intact *)
let words_of_line lineno line =
  let n = String.length line in
  let rec go i acc =
    if i >= n then List.rev acc
    else if line.[i] = ' ' || line.[i] = '\t' then go (i + 1) acc
    else if line.[i] = '"' then begin
      (* find the matching unescaped quote *)
      let buf = Buffer.create 16 in
      Buffer.add_char buf '"';
      let rec scan j =
        if j >= n then err "line %d: unterminated string" lineno
        else begin
          Buffer.add_char buf line.[j];
          if line.[j] = '"' then j + 1
          else if line.[j] = '\\' && j + 1 < n then begin
            Buffer.add_char buf line.[j + 1];
            scan (j + 2)
          end
          else scan (j + 1)
        end
      in
      let next = scan (i + 1) in
      go next (Buffer.contents buf :: acc)
    end
    else begin
      let j = ref i in
      while !j < n && line.[!j] <> ' ' && line.[!j] <> '\t' do
        incr j
      done;
      go !j (String.sub line i (!j - i) :: acc)
    end
  in
  go 0 []

let int_of lineno s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> err "line %d: expected an integer, got %S" lineno s

let ref_of lineno prefix s =
  let pl = String.length prefix in
  if String.length s > pl && String.sub s 0 pl = prefix then
    int_of lineno (String.sub s pl (String.length s - pl))
  else err "line %d: expected %s<id>, got %S" lineno prefix s

let caps_of lineno s =
  if String.length s < 2 || s.[0] <> '[' || s.[String.length s - 1] <> ']' then
    err "line %d: expected [..] capture list, got %S" lineno s;
  let inner = String.sub s 1 (String.length s - 2) in
  if inner = "" then [||]
  else
    Array.of_list
      (List.map (int_of lineno) (String.split_on_char ',' inner))

let string_of lineno s =
  try Scanf.sscanf s "%S" (fun x -> x)
  with Scanf.Scan_failure _ | End_of_file ->
    err "line %d: expected a quoted string, got %S" lineno s

(* "key=value" accessor *)
let kv lineno key s =
  match String.index_opt s '=' with
  | Some i when String.sub s 0 i = key ->
      String.sub s (i + 1) (String.length s - i - 1)
  | _ -> err "line %d: expected %s=<value>, got %S" lineno key s

let binop_of_mnemonic = function
  | "add" -> Some Ast.Add | "sub" -> Some Ast.Sub | "mul" -> Some Ast.Mul
  | "div" -> Some Ast.Div | "mod" -> Some Ast.Mod | "eq" -> Some Ast.Eq
  | "neq" -> Some Ast.Neq | "lt" -> Some Ast.Lt | "le" -> Some Ast.Le
  | "gt" -> Some Ast.Gt | "ge" -> Some Ast.Ge | "and" -> Some Ast.And
  | "or" -> Some Ast.Or | _ -> None

let parse_instr lineno ws : Instr.t =
  match ws with
  | [ "pushi"; n ] -> Instr.Push_int (int_of lineno n)
  | [ "pushb"; "true" ] -> Instr.Push_bool true
  | [ "pushb"; "false" ] -> Instr.Push_bool false
  | [ "pushs"; s ] -> Instr.Push_str (string_of lineno s)
  | [ "load"; n ] -> Instr.Load (int_of lineno n)
  | [ "store"; n ] -> Instr.Store (int_of lineno n)
  | [ "neg" ] -> Instr.Unop Ast.Neg
  | [ "not" ] -> Instr.Unop Ast.Not
  | [ "jmp"; n ] -> Instr.Jump (int_of lineno n)
  | [ "jmpf"; n ] -> Instr.Jump_if_false (int_of lineno n)
  | [ "newc"; n ] -> Instr.New_chan (int_of lineno n)
  | [ "trmsg"; ln ] -> (
      match String.rindex_opt ln '/' with
      | Some i ->
          Instr.Trmsg
            {
              label = String.sub ln 0 i;
              lid = -1;
              argc =
                int_of lineno (String.sub ln (i + 1) (String.length ln - i - 1));
            }
      | None -> err "line %d: expected trmsg label/argc" lineno)
  | [ "trobj"; mt ] -> Instr.Trobj (ref_of lineno "mt" mt)
  | [ "defgroup"; g ] -> Instr.Defgroup (ref_of lineno "g" g)
  | [ "instof"; n ] -> Instr.Instof (int_of lineno n)
  | [ "export"; x ] -> Instr.Export_name x
  | [ "exportc"; x; slot ] -> Instr.Export_class (x, int_of lineno slot)
  | [ ("import" | "importc") as which; target; cont; caps ] -> (
      match String.index_opt target '.' with
      | Some i ->
          let site = String.sub target 0 i in
          let name =
            String.sub target (i + 1) (String.length target - i - 1)
          in
          let cont = ref_of lineno "b" cont in
          let captures = caps_of lineno caps in
          if which = "import" then
            Instr.Import_name { site; name; cont; captures }
          else Instr.Import_class { site; name; cont; captures }
      | None -> err "line %d: expected site.name" lineno)
  | [ op ] when binop_of_mnemonic op <> None ->
      Instr.Binop (Option.get (binop_of_mnemonic op))
  | _ -> err "line %d: unknown instruction %S" lineno (String.concat " " ws)

type section =
  | Sblock of int * string * int * int * Instr.t list
  | Smtable of int * int array * Block.mentry list
  | Sgroup of int * int array * int array * Block.class_sig list

let parse text =
  let lines = String.split_on_char '\n' text in
  let entry = ref (-1) in
  let sections = ref [] in
  let current = ref None in
  let close lineno =
    match !current with
    | None -> ()
    | Some s ->
        ignore lineno;
        sections := s :: !sections;
        current := None
  in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let line = String.trim line in
      if line = "" then ()
      else if line = "}" then
        match !current with
        | Some _ -> close lineno
        | None -> err "line %d: unmatched '}'" lineno
      else
        let ws = words_of_line lineno line in
        match (ws, !current) with
        | [ "unit"; e ], None -> entry := ref_of lineno "b" (kv lineno "entry" e)
        | "block" :: b :: name :: params :: slots :: [ "{" ], None ->
            current :=
              Some
                (Sblock
                   ( ref_of lineno "b" b,
                     string_of lineno name,
                     int_of lineno (kv lineno "params" params),
                     int_of lineno (kv lineno "slots" slots),
                     [] ))
        | "mtable" :: mt :: caps :: [ "{" ], None ->
            current :=
              Some
                (Smtable
                   ( ref_of lineno "mt" mt,
                     caps_of lineno (kv lineno "caps" caps),
                     [] ))
        | "group" :: g :: caps :: slots :: [ "{" ], None ->
            current :=
              Some
                (Sgroup
                   ( ref_of lineno "g" g,
                     caps_of lineno (kv lineno "caps" caps),
                     caps_of lineno (kv lineno "slots" slots),
                     [] ))
        | _, Some (Sblock (id, name, params, slots, code)) ->
            current :=
              Some
                (Sblock (id, name, params, slots, parse_instr lineno ws :: code))
        | [ label; "->"; target ], Some (Smtable (id, caps, entries)) -> (
            match String.rindex_opt target '/' with
            | Some i ->
                let blk =
                  ref_of lineno "b" (String.sub target 0 i)
                in
                let np =
                  int_of lineno
                    (String.sub target (i + 1) (String.length target - i - 1))
                in
                current :=
                  Some
                    (Smtable
                       ( id, caps,
                         { Block.me_label = label; me_block = blk;
                           me_nparams = np }
                         :: entries ))
            | None -> err "line %d: expected b<id>/<arity>" lineno)
        | [ label; "->"; target ], Some (Sgroup (id, caps, slots, classes)) -> (
            match String.rindex_opt target '/' with
            | Some i ->
                let blk = ref_of lineno "b" (String.sub target 0 i) in
                let np =
                  int_of lineno
                    (String.sub target (i + 1) (String.length target - i - 1))
                in
                current :=
                  Some
                    (Sgroup
                       ( id, caps, slots,
                         { Block.cls_name = label; cls_block = blk;
                           cls_nparams = np }
                         :: classes ))
            | None -> err "line %d: expected b<id>/<arity>" lineno)
        | _, _ -> err "line %d: cannot parse %S" lineno line)
    lines;
  (match !current with
  | Some _ -> err "unterminated section at end of input"
  | None -> ());
  let sections = List.rev !sections in
  let blocks = Hashtbl.create 8 in
  let mtables = Hashtbl.create 8 in
  let groups = Hashtbl.create 8 in
  List.iter
    (function
      | Sblock (id, name, params, slots, code) ->
          if Hashtbl.mem blocks id then err "duplicate block b%d" id;
          Hashtbl.add blocks id
            { Block.blk_id = id; blk_name = name; blk_nparams = params;
              blk_nslots = slots; blk_code = Array.of_list (List.rev code) }
      | Smtable (id, caps, entries) ->
          if Hashtbl.mem mtables id then err "duplicate mtable mt%d" id;
          Hashtbl.add mtables id
            { Block.mt_id = id; mt_captures = caps;
              mt_entries = Array.of_list (List.rev entries) }
      | Sgroup (id, caps, slots, classes) ->
          if Hashtbl.mem groups id then err "duplicate group g%d" id;
          Hashtbl.add groups id
            { Block.grp_id = id; grp_captures = caps;
              grp_classes = Array.of_list (List.rev classes);
              grp_slots = slots })
    sections;
  let dense what tbl n =
    Array.init n (fun i ->
        match Hashtbl.find_opt tbl i with
        | Some v -> v
        | None -> err "missing %s %d (ids must be dense)" what i)
  in
  let u =
    { Block.blocks = dense "block" blocks (Hashtbl.length blocks);
      mtables = dense "mtable" mtables (Hashtbl.length mtables);
      groups = dense "group" groups (Hashtbl.length groups);
      entry = !entry }
  in
  if !entry < 0 then err "missing 'unit entry=bN' header";
  (* reuse the byte-code decoder's reference validation *)
  (try ignore (Bytecode.unit_of_string (Bytecode.unit_to_string u))
   with Tyco_support.Wire.Malformed m -> err "invalid unit: %s" m);
  u

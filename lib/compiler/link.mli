(** Dynamic linking of byte-code into a site's program area.

    “The code is then dynamically linked to the local program and the
    reduction proceeds locally.” (paper §5)

    A {!area} is the growable program area of one site.  Linking a
    received sub-unit appends its blocks, method tables and groups and
    rewrites their internal indices by fixed offsets — possible because
    {!Bytecode.extract_mtable}/[extract_group] re-base sub-units
    densely. *)

type area

val create : unit -> area
val of_unit : Block.unit_ -> area * int
(** Load an initial program; returns the area and the entry block id. *)

val block : area -> int -> Block.block
val mtable : area -> int -> Block.mtable
val group : area -> int -> Block.group
val n_blocks : area -> int
val n_instrs : area -> int

(** {1 Method-label interning}

    Linking interns every method label occurring in a [Trmsg]
    instruction or a method-table entry to a dense area-local integer
    id, and gives each method table a direct-mapped id → entry-index
    array.  Method dispatch and parked-message matching then never
    compare strings.  Ids are local to one area and never travel on the
    wire — the receiver of shipped code re-interns under its own
    area. *)

val intern : area -> string -> int
(** Id of a label, interning it on first sight. *)

val label_name : area -> int -> string
(** Inverse of {!intern}. *)

val n_labels : area -> int

val method_entry : area -> int -> lid:int -> int
(** Index into [mt_entries] of method table [mt] for interned label
    [lid], or [-1] when the table has no such method.  O(1). *)

val costs : area -> int -> int array
(** Per-pc {!Instr.cost} of a block, precomputed at link time (parallel
    to {!block}). *)

type offsets = { blk_off : int; mt_off : int; grp_off : int }

val link : area -> Block.unit_ -> offsets
(** Graft a sub-unit; old index [i] becomes [i + off] in the area. *)

val snapshot : area -> Block.unit_
(** The area as a unit (entry 0), for sub-unit extraction when code
    must be shipped.  Cached; invalidated by {!link}. *)

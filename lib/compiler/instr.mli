(** The instruction set of the extended TyCO virtual machine (paper §5).

    The machine is a hybrid: an operand stack evaluates builtin
    expressions (“a stack for evaluating builtin expressions”), while
    frame slots hold the bindings of local variables (“a local variable
    table”).  The communication instructions [trmsg]/[trobj], the
    instantiation instruction [instof] and the distribution
    instructions [export]/[import] follow the paper's names; their
    remote cases are surfaced to the embedding site as pending remote
    operations rather than executed in-line (the site serializes and
    forwards them through its TyCOd daemon).

    Code offsets in [Jump]/[Jump_if_false] are absolute within the
    enclosing block. *)

type t =
  (* operand stack *)
  | Push_int of int
  | Push_bool of bool
  | Push_str of string
  | Load of int           (** push frame slot *)
  | Store of int          (** pop into frame slot *)
  | Binop of Tyco_syntax.Ast.binop
  | Unop of Tyco_syntax.Ast.unop
  (* control *)
  | Jump of int
  | Jump_if_false of int
  (* processes *)
  | New_chan of int       (** fresh channel into slot *)
  | Trmsg of { label : string; lid : int; argc : int }
      (** stack: args..., target on top.  [lid] is the area-local
          interned id of [label], assigned by {!Link.link}; [-1] until
          the instruction is linked.  It never travels on the wire. *)
  | Trobj of int          (** method-table index; stack: target on top *)
  | Defgroup of int       (** definition-group index *)
  | Instof of int         (** argc; stack: args..., class value on top *)
  (* distribution (paper §5: new virtual machine instructions) *)
  | Export_name of string     (** pop channel; register with name service *)
  | Export_class of string * int
      (** class slot; register exported class with name service *)
  | Import_name of { site : string; name : string; cont : int; captures : int array }
      (** ask the name service for [site.name]; when the reply arrives,
          spawn block [cont] with env = reply value :: captured slots.
          Ends the current thread (the paper overlaps the wait by
          context-switching). *)
  | Import_class of { site : string; name : string; cont : int; captures : int array }

val pp : Format.formatter -> t -> unit

val cost : t -> int
(** Abstract execution cost in virtual-time units (≈ns on the paper's
    hardware); drives the discrete-event simulation clock. *)
